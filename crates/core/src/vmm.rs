//! The Virtual Machine Manager (§2.1).
//!
//! The VMM is the multiplexer between a host BGP implementation and the
//! extension bytecodes attached to its insertion points:
//!
//! * at load time it decodes each bytecode, resolves the helper names the
//!   manifest declares, and **verifies** the program against exactly that
//!   helper set (a call to an undeclared helper is rejected statically);
//! * at run time, [`Vmm::run`] executes the ordered chain of extensions for
//!   an insertion point. An extension either produces a result (returned to
//!   the host), calls `next()` (the VMM runs the following extension, or —
//!   after the last one — reports [`VmmOutcome::Fallback`] so the host uses
//!   its native code), or **faults**, in which case the VMM stops it,
//!   records the error, notifies the host through its logger, and falls
//!   back to native behaviour;
//! * it owns the extension memory spaces: a fresh ephemeral heap per
//!   invocation (`ctx_malloc`, freed automatically on return) and one
//!   persistent space per *program group* shared by the bytecodes of the
//!   same xBGP program (`ctx_shared_malloc` / `ctx_shared_get`) but
//!   unreachable from any other program — eBPF-VM-enforced isolation;
//! * execution is **transactional** (DESIGN.md §4d): host mutations
//!   (`set_attr` / `add_attr` / `remove_attr` / `write_buf` /
//!   `rib_add_route`) are staged in a per-chain [`Txn`] buffer — with
//!   read-your-writes visibility across the chain — and committed to the
//!   [`HostApi`] only when the chain ends cleanly. A trap, fuel
//!   exhaustion or helper fault discards the buffer, leaving the host
//!   byte-identical to a run with no extensions at all;
//! * a per-extension circuit breaker quarantines any extension that
//!   faults [`QUARANTINE_THRESHOLD`] times in a row: it is dropped from
//!   its insertion point's cached chain (a success resets the streak)
//!   and the eviction is counted in the metrics snapshot.

use crate::api::{self, helper, InsertionPoint};
use crate::host::{HostApi, HostError, HostOp};
use crate::manifest::Manifest;
use crate::policy::{ExecPolicy, OnFault};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;
use xbgp_obs::trace::{TraceConfig, TraceDump, TraceKind, Tracer, NO_EXT};
use xbgp_obs::{Histogram, NoopRecorder, Recorder, Snapshot};
use xbgp_vm::{
    interp::HelperOutcome, verify_and_load_with, CompiledProgram, Engine, ExecOutcome,
    HelperDispatcher, LoadedProgram, MemoryMap, Region, RegionKind, VerifyError, VmConfig, VmError,
    HEAP_BASE, SHARED_BASE,
};
use xbgp_wire::Ipv4Prefix;

/// Process-wide count of verify+pre-decode passes ([`verify_and_load_with`]
/// calls). Loading a program is the expensive, once-per-VMM step; sharded
/// deployments use this counter to prove each shard's VMM verified every
/// program exactly once — per shard, never per batch of routes.
static VERIFY_LOADS: AtomicU64 = AtomicU64::new(0);

/// Total verify+pre-decode passes performed by this process so far.
pub fn verify_load_count() -> u64 {
    VERIFY_LOADS.load(Ordering::Relaxed)
}

/// Size of the per-invocation ephemeral heap.
pub const HEAP_SIZE: usize = 16 * 1024;
/// Size of each program group's persistent shared space.
pub const SHARED_SIZE: usize = 64 * 1024;
/// Consecutive faults after which an extension is quarantined: removed
/// from its insertion point's chain until the VMM is reloaded. A single
/// clean run (value or `next()`) resets the streak.
pub const QUARANTINE_THRESHOLD: u32 = 3;

/// Load-time errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmmError {
    /// Bytecode could not be decoded.
    BadBytecode { extension: String, reason: String },
    /// A declared helper name is unknown.
    UnknownHelperName { extension: String, name: String },
    /// The verifier rejected the program.
    Rejected {
        extension: String,
        error: VerifyError,
    },
}

impl fmt::Display for VmmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmmError::BadBytecode { extension, reason } => {
                write!(f, "extension `{extension}`: bad bytecode: {reason}")
            }
            VmmError::UnknownHelperName { extension, name } => {
                write!(f, "extension `{extension}`: unknown helper `{name}`")
            }
            VmmError::Rejected { extension, error } => {
                write!(f, "extension `{extension}`: rejected by verifier: {error}")
            }
        }
    }
}

impl std::error::Error for VmmError {}

/// Result of running an insertion point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmmOutcome {
    /// An extension produced this value; the host must use it instead of
    /// its native behaviour.
    Value(u64),
    /// No extension handled the operation (none attached, all delegated
    /// with `next()`, or a faulting extension's policy was
    /// `on_fault: fallback`): run the native code.
    Fallback,
    /// An extension with `on_fault: abort` faulted. Staged mutations were
    /// rolled back, exactly as for `Fallback`, but the host must *fail
    /// closed*: filter points treat the route as rejected instead of
    /// widening policy by falling through to native acceptance.
    Aborted,
}

struct Extension {
    name: String,
    /// Index into `Vmm::shared` of this extension's program group.
    shared_idx: usize,
    /// The verified program, pre-decoded once at load time
    /// ([`verify_and_load_with`]); invocations execute it directly with no
    /// per-run decoding or jump-target resolution.
    prog: LoadedProgram,
    /// Basic-block lowering of `prog`, built on the first switch to
    /// [`Engine::Compiled`] and kept thereafter (engine switches are an
    /// operational knob, not a per-run path). `None` until then.
    compiled: Option<CompiledProgram>,
    /// Manifest-declared fuel budget; `None` uses the VMM's global
    /// default (see [`Vmm::set_fuel`]).
    fuel_override: Option<u64>,
    /// Cap on per-run `ctx_malloc` allocations, clamped to [`HEAP_SIZE`].
    mem_cap: usize,
    /// What a fault at this extension means for the host.
    on_fault: OnFault,
    /// Circuit-breaker state: faults since the last clean run.
    consecutive_faults: u32,
    /// Tripped breaker: the extension was evicted from its chain.
    quarantined: bool,
    runs: u64,
    errors: u64,
    /// Runs that ended in `next()` (delegated to the rest of the chain).
    fallbacks: u64,
    helper_calls: u64,
    insns_retired: u64,
    /// Per-run wall-clock latency in nanoseconds. Only populated when the
    /// VMM's metrics are enabled (timing costs two clock reads per run).
    latency: Histogram,
    /// Pooled sandbox: stack, ephemeral heap and (swapped-in) shared
    /// regions stay mapped across runs so an invocation costs no
    /// allocation. The stack is re-zeroed fully and the heap up to the
    /// previous run's allocation watermark (the buffers are
    /// per-extension, so residual bytes beyond the watermark are never
    /// another extension's data).
    mem: MemoryMap,
    heap_watermark: usize,
    /// Region-table indices of the pooled stack/heap/shared regions,
    /// resolved once at load time so the per-run refresh does no kind
    /// scans.
    ri_stack: usize,
    ri_heap: usize,
    ri_shared: usize,
    /// Interned flight-recorder name id ([`NO_EXT`] until tracing is
    /// enabled), copied into every trace event this extension produces.
    trace_ext: u16,
}

/// Per-extension and per-helper execution profile, accumulated only while
/// [`Vmm::enable_profile`] is active. The interpreter hot path is
/// untouched: fuel histograms reuse the [`RunMetrics`] the metered run
/// already returns, and helper latency is timed in the dispatcher — the
/// one place every helper call already funnels through.
///
/// [`RunMetrics`]: xbgp_vm::interp::RunMetrics
#[derive(Default)]
struct VmProfiler {
    /// Fuel consumed per run, per extension (parallel to `Vmm::exts`).
    fuel: Vec<Histogram>,
    /// Helper id → invocation count.
    helper_calls: BTreeMap<u32, u64>,
    /// Helper id → cumulative nanoseconds spent in the helper.
    helper_ns: BTreeMap<u32, u64>,
    /// Per-point total extension-run nanoseconds (indexed by
    /// [`point_index`]); VM time is this minus the helper share.
    point_total_ns: [u64; 5],
    /// Per-point nanoseconds attributed to helper calls.
    point_helper_ns: [u64; 5],
}

#[derive(Default)]
struct SharedMeta {
    /// key → (virtual address, size) inside the group's shared region.
    allocs: HashMap<u64, (u64, u64)>,
    used: usize,
}

struct SharedSpace {
    group: String,
    data: Vec<u8>,
    meta: SharedMeta,
}

/// Per-extension execution statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtensionStats {
    pub name: String,
    pub insertion_point: InsertionPoint,
    pub runs: u64,
    pub errors: u64,
    /// Runs that delegated with `next()`.
    pub fallbacks: u64,
    /// Total helper calls issued across all runs.
    pub helper_calls: u64,
    /// Total eBPF instructions retired across all runs.
    pub insns_retired: u64,
    /// Tripped circuit breaker: the extension was evicted from its chain
    /// after [`QUARANTINE_THRESHOLD`] consecutive faults.
    pub quarantined: bool,
}

/// Per-insertion-point chain counters. `runs` counts every [`Vmm::run`]
/// invocation for the point; each run ends as exactly one of `values`
/// (an extension produced a result), `fallbacks` (no extension attached
/// or the whole chain delegated) or `errors` (an extension faulted).
#[derive(Default)]
struct PointMetrics {
    runs: u64,
    values: u64,
    fallbacks: u64,
    /// Faulted runs. Unlike the outcome counters above, this increments
    /// whether or not metrics are enabled: faults are rare and the CI
    /// fault-injection smoke compares it against `rollbacks`.
    errors: u64,
    /// Faulted runs whose transaction buffer held staged mutations that
    /// were discarded. Always counted (see `errors`).
    rollbacks: u64,
    /// Faulted runs surfaced as [`VmmOutcome::Aborted`] (fail-closed).
    /// Always counted.
    aborts: u64,
    /// End-to-end chain latency in nanoseconds (metrics-enabled runs only).
    latency: Histogram,
}

/// Dense index of an insertion point into per-point tables.
fn point_index(p: InsertionPoint) -> usize {
    match p {
        InsertionPoint::BgpReceiveMessage => 0,
        InsertionPoint::BgpInboundFilter => 1,
        InsertionPoint::BgpDecision => 2,
        InsertionPoint::BgpOutboundFilter => 3,
        InsertionPoint::BgpEncodeMessage => 4,
    }
}

/// Staged final state of one attribute: `Some((flags, payload))` is a
/// set/replace, `None` a removal tombstone.
type StagedAttr = Option<(u8, Vec<u8>)>;

/// Host mutations staged by one extension chain, committed only when the
/// chain ends cleanly (a value, or every extension delegated). Any fault
/// discards the buffer instead, so the host observes either the whole
/// chain's effects or none of them.
///
/// Reads during the chain are *read-your-writes*: `get_attr`, `has_attr`
/// and `add_attr` consult the staged overlay before the host, so an
/// extension sees the attributes a predecessor in the chain staged.
#[derive(Default)]
struct Txn {
    /// Final staged state per attribute code, in first-touch order:
    /// `Some((flags, payload))` = set/replace, `None` = removal. One entry
    /// per code — restaging overwrites in place — so the commit applies
    /// final states, never intermediate ones.
    attrs: Vec<(u8, StagedAttr)>,
    /// Bytes staged by `write_buf`, appended to the host buffer on commit.
    out_buf: Vec<u8>,
    /// Routes staged by `rib_add_route`, installed in call order.
    rib_adds: Vec<(Ipv4Prefix, u32)>,
}

impl Txn {
    fn is_empty(&self) -> bool {
        self.attrs.is_empty() && self.out_buf.is_empty() && self.rib_adds.is_empty()
    }

    /// Staged operation count, for `txn_commit`/`txn_rollback` trace
    /// payloads (the buffered write counts once, whatever its length).
    fn op_count(&self) -> usize {
        self.attrs.len() + usize::from(!self.out_buf.is_empty()) + self.rib_adds.len()
    }

    /// The staged overlay for `code`: `None` = untouched (read through to
    /// the host), `Some(None)` = staged removal, `Some(Some(..))` = staged
    /// value.
    fn staged(&self, code: u8) -> Option<&StagedAttr> {
        self.attrs.iter().find(|(c, _)| *c == code).map(|(_, e)| e)
    }

    fn stage_attr(&mut self, code: u8, entry: StagedAttr) {
        match self.attrs.iter_mut().find(|(c, _)| *c == code) {
            Some(slot) => slot.1 = entry,
            None => self.attrs.push((code, entry)),
        }
    }

    /// Replay the staged mutations against the host. Every operation was
    /// validated by `HostApi::check_op` at stage time, so an error here is
    /// a host-side contract bug; the caller logs and counts it.
    fn commit(self, host: &mut dyn HostApi) -> Result<(), HostError> {
        for (code, entry) in self.attrs {
            match entry {
                Some((flags, value)) => host.set_attr(code, flags, &value)?,
                // A stage-time removal may target an attribute that only
                // ever existed inside the overlay (set then removed).
                None => {
                    if host.has_attr(code) {
                        host.remove_attr(code)?;
                    }
                }
            }
        }
        if !self.out_buf.is_empty() {
            host.write_buf(&self.out_buf)?;
        }
        for (prefix, nexthop) in self.rib_adds {
            host.rib_add_route(prefix, nexthop)?;
        }
        Ok(())
    }
}

/// The Virtual Machine Manager. See the module documentation.
pub struct Vmm {
    /// Extension storage, indexed by the per-point attachment lists.
    exts: Vec<(InsertionPoint, Extension)>,
    /// Ordered extension indices per insertion point (indexed by
    /// [`point_index`]).
    attached: [Vec<usize>; 5],
    shared: Vec<SharedSpace>,
    xtra: HashMap<String, Vec<u8>>,
    vm_config: VmConfig,
    /// Which execution engine runs extension bytecode. The engines are
    /// bit-for-bit equivalent (same Loc-RIBs, same faults at the same slot
    /// pcs), so this only moves the dispatch-cost needle.
    engine: Engine,
    /// Most recent runtime fault, for host diagnostics. Cleared when a
    /// subsequent chain run completes without faulting.
    last_error: Option<(String, VmError)>,
    /// Extensions evicted by the circuit breaker since load.
    quarantines: u64,
    /// Commit-time host failures (should be zero: `check_op` validates
    /// every staged operation, so this counts host-side contract bugs).
    commit_faults: u64,
    /// Per-point outcome counters, indexed by [`point_index`].
    points: [PointMetrics; 5],
    /// When set, runs are timed (two `Instant` reads per chain), outcome
    /// and instruction counters accumulate, and the latency histograms
    /// fill in. Off by default so the hot path pays a single branch.
    metrics_enabled: bool,
    /// Host-pluggable event sink; `NoopRecorder` (inlined no-ops) unless
    /// the host installs one via [`Vmm::set_recorder`].
    recorder: Box<dyn Recorder>,
    /// Skips the virtual recorder dispatch entirely while the default
    /// no-op recorder is installed, keeping the per-run cost to plain
    /// integer increments.
    recorder_active: bool,
    /// Reusable marshalling buffer lent to the helper dispatcher, so
    /// variable-length helper transfers (`get_attr` etc.) allocate at most
    /// once over the VMM's lifetime instead of once per call.
    scratch: Vec<u8>,
    /// Route-scoped flight recorder ([`Vmm::enable_trace`]); `None` keeps
    /// the hot path to a handful of predictable is-some branches.
    tracer: Option<Box<Tracer>>,
    /// Execution profiler ([`Vmm::enable_profile`]); `None` by default.
    profiler: Option<Box<VmProfiler>>,
}

impl Vmm {
    /// Load a manifest: decode, resolve helpers, verify, attach.
    pub fn from_manifest(manifest: &Manifest) -> Result<Vmm, VmmError> {
        let mut vmm = Vmm {
            exts: Vec::new(),
            attached: Default::default(),
            shared: Vec::new(),
            xtra: manifest.xtra.iter().map(|(k, v)| (k.clone(), v.0.clone())).collect(),
            vm_config: VmConfig::default(),
            engine: Engine::default(),
            last_error: None,
            quarantines: 0,
            commit_faults: 0,
            points: Default::default(),
            metrics_enabled: false,
            recorder: Box::new(NoopRecorder),
            recorder_active: false,
            scratch: Vec::new(),
            tracer: None,
            profiler: None,
        };
        for spec in &manifest.extensions {
            let prog = spec
                .program()
                .map_err(|reason| VmmError::BadBytecode { extension: spec.name.clone(), reason })?;
            let mut ids = std::collections::HashSet::new();
            for name in &spec.helpers {
                match helper::id_of(name) {
                    Some(id) => {
                        ids.insert(id);
                    }
                    None => {
                        return Err(VmmError::UnknownHelperName {
                            extension: spec.name.clone(),
                            name: name.clone(),
                        })
                    }
                }
            }
            // Structural verification plus the abstract-interpretation
            // pass, parameterized by this insertion point's helper
            // contracts (e.g. `write_buf` is only legal while encoding).
            let opts = crate::contracts::analysis_options(spec.insertion_point);
            let loaded = verify_and_load_with(&prog, &ids, &opts)
                .map_err(|error| VmmError::Rejected { extension: spec.name.clone(), error })?;
            VERIFY_LOADS.fetch_add(1, Ordering::Relaxed);
            let idx = vmm.exts.len();
            let group = if spec.program.is_empty() {
                spec.name.clone()
            } else {
                spec.program.clone()
            };
            let shared_idx = match vmm.shared.iter().position(|s| s.group == group) {
                Some(i) => i,
                None => {
                    vmm.shared.push(SharedSpace {
                        group,
                        data: vec![0; SHARED_SIZE],
                        meta: SharedMeta::default(),
                    });
                    vmm.shared.len() - 1
                }
            };
            let mut mem = MemoryMap::new();
            mem.map(Region::new(
                RegionKind::Stack,
                xbgp_vm::STACK_BASE,
                vec![0; xbgp_vm::STACK_SIZE],
                true,
            ));
            mem.map(Region::new(RegionKind::Heap, HEAP_BASE, vec![0; HEAP_SIZE], true));
            // Shared data is swapped in from the group space per run; an
            // empty placeholder keeps the region table stable.
            mem.map(Region::new(RegionKind::Shared, SHARED_BASE, Vec::new(), true));
            let ri_stack = mem.region_index(RegionKind::Stack).expect("stack just mapped");
            let ri_heap = mem.region_index(RegionKind::Heap).expect("heap just mapped");
            let ri_shared = mem.region_index(RegionKind::Shared).expect("shared just mapped");
            vmm.exts.push((
                spec.insertion_point,
                Extension {
                    name: spec.name.clone(),
                    shared_idx,
                    prog: loaded,
                    compiled: None,
                    fuel_override: spec.fuel,
                    mem_cap: HEAP_SIZE,
                    on_fault: spec.on_fault,
                    consecutive_faults: 0,
                    quarantined: false,
                    runs: 0,
                    errors: 0,
                    fallbacks: 0,
                    helper_calls: 0,
                    insns_retired: 0,
                    latency: Histogram::new(),
                    mem,
                    heap_watermark: 0,
                    ri_stack,
                    ri_heap,
                    ri_shared,
                    trace_ext: NO_EXT,
                },
            ));
            vmm.attached[point_index(spec.insertion_point)].push(idx);
        }
        Ok(vmm)
    }

    /// An empty VMM: every insertion point falls back to native code.
    pub fn empty() -> Vmm {
        Vmm::from_manifest(&Manifest::new()).expect("empty manifest always loads")
    }

    /// Override the default per-run instruction budget. Extensions whose
    /// manifest entry declares its own `fuel` keep that value.
    pub fn set_fuel(&mut self, fuel: u64) {
        self.vm_config = VmConfig { fuel };
    }

    /// Select the execution engine for every attached extension. Switching
    /// to [`Engine::Compiled`] lowers each pre-decoded program into basic
    /// blocks once (the artifact is cached alongside the decoded form);
    /// switching back keeps the compiled form for a later re-switch.
    ///
    /// The engines are contractually bit-for-bit equivalent — identical
    /// outcomes, memory, metrics and typed faults at identical slot pcs —
    /// so this is safe to flip on a live VMM between chain runs.
    pub fn set_engine(&mut self, engine: Engine) {
        self.engine = engine;
        if engine == Engine::Compiled {
            for (_, e) in &mut self.exts {
                if e.compiled.is_none() {
                    e.compiled = Some(CompiledProgram::compile(&e.prog));
                }
            }
        }
    }

    /// The currently selected execution engine.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// Toggle proof-carrying runtime-check elision for every attached
    /// extension (on by default). Off forces every memory access through
    /// the fully checked path and re-arms the per-instruction fuel
    /// ledger. The two modes are contractually bit-for-bit identical —
    /// same outcomes, memory, metrics and faults at the same slot pcs
    /// (the conformance and ablation suites assert it) — so this is an
    /// experiment/diagnostics knob, not a safety valve.
    pub fn set_check_elision(&mut self, on: bool) {
        for (_, e) in &mut self.exts {
            e.prog.set_elide(on);
            // The compiled form snapshots the flag at lowering time.
            if e.compiled.is_some() {
                e.compiled = Some(CompiledProgram::compile(&e.prog));
            }
        }
    }

    /// Cap what `ctx_malloc` may hand extension `name` per run, in bytes
    /// (clamped to the arena's [`HEAP_SIZE`]).
    pub fn set_mem_cap(&mut self, name: &str, cap: usize) {
        for (_, e) in self.exts.iter_mut().filter(|(_, e)| e.name == name) {
            e.mem_cap = cap.min(HEAP_SIZE);
        }
    }

    /// The effective per-invocation policy for extension `name`, if
    /// loaded: manifest-declared values with VMM defaults filled in.
    pub fn policy_of(&self, name: &str) -> Option<ExecPolicy> {
        self.exts.iter().find(|(_, e)| e.name == name).map(|(_, e)| ExecPolicy {
            fuel: e.fuel_override.unwrap_or(self.vm_config.fuel),
            mem_cap: e.mem_cap,
            on_fault: e.on_fault,
        })
    }

    /// Is any extension attached to `point`? Hosts use this to skip
    /// building an execution context when nothing is attached.
    pub fn has_extensions(&self, point: InsertionPoint) -> bool {
        !self.attached[point_index(point)].is_empty()
    }

    /// Execute the extension chain for `point` with `host` as the
    /// execution context.
    pub fn run(&mut self, point: InsertionPoint, host: &mut dyn HostApi) -> VmmOutcome {
        let pi = point_index(point);
        let engine = self.engine;
        // One predictable branch decides whether any accounting happens;
        // an untracked VMM pays nothing else on the hot path.
        let track = self.metrics_enabled || self.recorder_active;
        if track {
            self.points[pi].runs += 1;
        }
        let chain_len = self.attached[pi].len();
        if chain_len == 0 {
            if track {
                self.points[pi].fallbacks += 1;
            }
            return VmmOutcome::Fallback;
        }
        let chain_start = self.metrics_enabled.then(Instant::now);
        // Timing also runs while profiling: the per-point VM/helper time
        // breakdown needs the run's wall clock even if metrics are off.
        let timing = self.metrics_enabled || self.profiler.is_some();
        if let Some(t) = self.tracer.as_deref_mut() {
            t.record(TraceKind::PointEnter, pi as u8, NO_EXT, chain_len as u64, 0);
        }
        // All host mutations of this chain stage here; nothing touches
        // the host until the chain's outcome is known (DESIGN.md §4d).
        let mut txn = Txn::default();
        for k in 0..chain_len {
            // The chain was resolved at load time (`attached` caches the
            // extension indices per insertion point), so dispatching a hook
            // does no name lookups and clones nothing.
            let idx = self.attached[pi][k];
            let ext = &mut self.exts[idx].1;
            let shared_idx = ext.shared_idx;

            // Refresh the pooled sandbox in place: zero the stack fully,
            // the heap up to the previous allocation watermark, and swap
            // the program group's persistent space in. Region indices were
            // cached at load time, so no region-table scans happen here.
            let watermark = ext.heap_watermark;
            ext.mem.region_at_mut(ext.ri_stack).data.fill(0);
            ext.mem.region_at_mut(ext.ri_heap).data[..watermark].fill(0);
            std::mem::swap(
                &mut ext.mem.region_at_mut(ext.ri_shared).data,
                &mut self.shared[shared_idx].data,
            );

            // The per-invocation policy: manifest overrides, VMM defaults.
            let cfg = VmConfig { fuel: ext.fuel_override.unwrap_or(self.vm_config.fuel) };
            let ext_start = timing.then(Instant::now);
            let (outcome, heap_used, metrics) = {
                let mut dispatcher = Dispatcher {
                    host,
                    xtra: &self.xtra,
                    shared: &mut self.shared[shared_idx].meta,
                    scratch: &mut self.scratch,
                    txn: &mut txn,
                    mem_cap: ext.mem_cap,
                    heap_used: 0,
                    tracer: self.tracer.as_deref_mut(),
                    prof: self.profiler.as_deref_mut(),
                    pi,
                    ext_tid: ext.trace_ext,
                };
                // Split borrow: the program forms and the memory map are
                // disjoint fields of the extension. The compiled form is
                // used only when the engine selected it (set_engine builds
                // it eagerly, so `None` under Compiled cannot happen; the
                // interpreter fallback keeps the dispatch total).
                let (outcome, metrics) = match &ext.compiled {
                    Some(cp) if engine == Engine::Compiled => {
                        cp.run_metered(cfg, &mut ext.mem, &mut dispatcher, &[])
                    }
                    _ => ext.prog.run_metered(cfg, &mut ext.mem, &mut dispatcher, &[]),
                };
                (outcome, dispatcher.heap_used, metrics)
            };

            // Swap the shared space back regardless of outcome.
            std::mem::swap(
                &mut ext.mem.region_at_mut(ext.ri_shared).data,
                &mut self.shared[shared_idx].data,
            );
            ext.heap_watermark = heap_used;
            ext.runs += 1;
            if track {
                ext.helper_calls += metrics.helper_calls;
                ext.insns_retired += metrics.insns_retired;
            }
            if let Some(start) = ext_start {
                let ns = start.elapsed().as_nanos() as u64;
                if self.metrics_enabled {
                    ext.latency.observe(ns);
                }
                if let Some(p) = self.profiler.as_deref_mut() {
                    p.point_total_ns[pi] += ns;
                }
            }
            if let Some(p) = self.profiler.as_deref_mut() {
                p.fuel[idx].observe(metrics.fuel_consumed);
            }
            match outcome {
                Ok(ExecOutcome::Return(v)) => {
                    ext.consecutive_faults = 0;
                    let name_idx = idx;
                    self.last_error = None;
                    if track {
                        self.points[pi].values += 1;
                        self.finish_run(pi, point, chain_start, "value");
                    }
                    self.commit(pi, name_idx, txn, host);
                    if let Some(t) = self.tracer.as_deref_mut() {
                        t.record(TraceKind::PointExit, pi as u8, NO_EXT, 0, 0);
                    }
                    return VmmOutcome::Value(v);
                }
                Ok(ExecOutcome::Next) => {
                    ext.consecutive_faults = 0;
                    if track {
                        ext.fallbacks += 1;
                    }
                    continue;
                }
                Err(e) => {
                    // Monitored execution: stop the faulty extension, roll
                    // the staged mutations back, tell the host, and honour
                    // the extension's fault policy.
                    ext.errors += 1;
                    ext.consecutive_faults += 1;
                    let trip = ext.consecutive_faults >= QUARANTINE_THRESHOLD && !ext.quarantined;
                    if trip {
                        ext.quarantined = true;
                    }
                    let on_fault = ext.on_fault;
                    let name = ext.name.clone();
                    let ext_tid = ext.trace_ext;
                    let streak = ext.consecutive_faults;
                    let rolled_back = !txn.is_empty();
                    let staged_ops = txn.op_count() as u64;
                    drop(txn); // discard staged mutations: byte-identical native state
                    host.log(&format!("xbgp: extension `{name}` aborted: {e}"));
                    if let Some(t) = self.tracer.as_deref_mut() {
                        // Fault-path events bypass sampling: the flight
                        // recorder must never miss the crash itself, and
                        // the postmortem wants the lead-up in the ring.
                        if rolled_back {
                            t.record_always(
                                TraceKind::TxnRollback,
                                pi as u8,
                                ext_tid,
                                staged_ops,
                                0,
                            );
                        }
                        t.record_always(
                            TraceKind::Fault,
                            pi as u8,
                            ext_tid,
                            e.pc() as u64,
                            e.code(),
                        );
                        if trip {
                            t.record_always(
                                TraceKind::Quarantine,
                                pi as u8,
                                ext_tid,
                                u64::from(streak),
                                0,
                            );
                        }
                        t.postmortem(
                            &name,
                            ext_tid,
                            pi as u8,
                            &e.to_string(),
                            Some(e.pc() as u64),
                            trip,
                        );
                    }
                    self.last_error = Some((name.clone(), e));
                    // Fault-path counters are unconditional: faults are
                    // rare, and rollback accounting must not depend on
                    // whether the host enabled metrics.
                    self.points[pi].errors += 1;
                    if rolled_back {
                        self.points[pi].rollbacks += 1;
                    }
                    if trip {
                        // Re-cache the chain without the quarantined
                        // extension; subsequent runs never dispatch it.
                        self.attached[pi].retain(|&i| i != idx);
                        self.quarantines += 1;
                        host.log(&format!(
                            "xbgp: extension `{name}` quarantined after \
                             {QUARANTINE_THRESHOLD} consecutive faults"
                        ));
                        if self.recorder_active {
                            self.recorder.counter_add(
                                "xbgp_vmm_quarantines_total",
                                &[("extension", &name)],
                                1,
                            );
                        }
                    }
                    if track {
                        self.finish_run(pi, point, chain_start, "error");
                    }
                    let out = match on_fault {
                        OnFault::Fallback => VmmOutcome::Fallback,
                        OnFault::Abort => {
                            self.points[pi].aborts += 1;
                            VmmOutcome::Aborted
                        }
                    };
                    if let Some(t) = self.tracer.as_deref_mut() {
                        let code = if out == VmmOutcome::Aborted { 2 } else { 1 };
                        t.record(TraceKind::PointExit, pi as u8, NO_EXT, code, 0);
                    }
                    return out;
                }
            }
        }
        // The whole chain delegated with `next()`: a clean fallback. The
        // chain may still have staged mutations (an extension can mutate
        // and then delegate); they commit exactly like a value outcome.
        self.last_error = None;
        if track {
            self.points[pi].fallbacks += 1;
            self.finish_run(pi, point, chain_start, "fallback");
        }
        let last = *self.attached[pi].last().expect("chain non-empty");
        self.commit(pi, last, txn, host);
        if let Some(t) = self.tracer.as_deref_mut() {
            t.record(TraceKind::PointExit, pi as u8, NO_EXT, 1, 0);
        }
        VmmOutcome::Fallback
    }

    /// Apply a chain's staged mutations to the host. `check_op` validated
    /// every operation at stage time, so a failure here is a host bug: it
    /// is logged against the extension that ended the chain and counted
    /// in `xbgp_vmm_commit_faults_total`, and the remaining staged
    /// operations are dropped.
    fn commit(&mut self, pi: usize, ext_idx: usize, txn: Txn, host: &mut dyn HostApi) {
        if txn.is_empty() {
            return;
        }
        if let Some(t) = self.tracer.as_deref_mut() {
            t.record(TraceKind::TxnCommit, pi as u8, NO_EXT, txn.op_count() as u64, 0);
        }
        if let Err(e) = txn.commit(host) {
            self.commit_faults += 1;
            let name = &self.exts[ext_idx].1.name;
            host.log(&format!("xbgp: commit after extension `{name}` failed: {e}"));
        }
    }

    /// Per-chain bookkeeping when a run with attached extensions ends:
    /// observe the end-to-end latency and forward the outcome to the
    /// pluggable recorder (a no-op unless the host installed one).
    fn finish_run(
        &mut self,
        pi: usize,
        point: InsertionPoint,
        start: Option<Instant>,
        outcome: &'static str,
    ) {
        if let Some(t0) = start {
            let ns = t0.elapsed().as_nanos() as u64;
            self.points[pi].latency.observe(ns);
            if self.recorder_active {
                self.recorder.observe("xbgp_vmm_run_latency_ns", &[("point", point.name())], ns);
            }
        }
        if self.recorder_active {
            self.recorder.counter_add(
                "xbgp_vmm_runs_total",
                &[("point", point.name()), ("outcome", outcome)],
                1,
            );
        }
    }

    /// Read an allocation out of a program group's persistent memory
    /// (observability: lets hosts/tests inspect what extensions persist,
    /// e.g. the origin-validation counters of §3.4).
    pub fn shared_read(&self, group: &str, key: u64) -> Option<Vec<u8>> {
        let space = self.shared.iter().find(|s| s.group == group)?;
        let (addr, size) = space.meta.allocs.get(&key)?;
        let off = (addr - SHARED_BASE) as usize;
        Some(space.data[off..off + *size as usize].to_vec())
    }

    /// The most recent runtime fault, if any.
    pub fn last_error(&self) -> Option<(&str, &VmError)> {
        self.last_error.as_ref().map(|(n, e)| (n.as_str(), e))
    }

    /// Execution statistics for every loaded extension.
    pub fn stats(&self) -> Vec<ExtensionStats> {
        self.exts
            .iter()
            .map(|(point, e)| ExtensionStats {
                name: e.name.clone(),
                insertion_point: *point,
                runs: e.runs,
                errors: e.errors,
                fallbacks: e.fallbacks,
                helper_calls: e.helper_calls,
                insns_retired: e.insns_retired,
                quarantined: e.quarantined,
            })
            .collect()
    }

    /// Enable metrics: subsequent runs collect per-point outcome counters,
    /// per-extension helper/instruction counters, and latency histograms
    /// (two clock reads per chain run). Off by default so an untracked
    /// VMM's hot path pays a single predictable branch.
    pub fn enable_metrics(&mut self) {
        self.metrics_enabled = true;
    }

    /// Whether run timing is enabled (see [`Vmm::enable_metrics`]).
    pub fn metrics_enabled(&self) -> bool {
        self.metrics_enabled
    }

    /// Install a live event sink. Each finished chain run emits an
    /// `xbgp_vmm_runs_total{point,outcome}` counter increment, plus an
    /// `xbgp_vmm_run_latency_ns{point}` observation when timing is on.
    pub fn set_recorder(&mut self, recorder: Box<dyn Recorder>) {
        self.recorder = recorder;
        self.recorder_active = true;
    }

    /// Attach a route-scoped flight recorder. Every loaded extension's
    /// name is interned up front, so recording an event never allocates.
    /// The host drives the route scope through [`Vmm::tracer_mut`]
    /// (`on_ingest` / `begin_route` / `set_now`); the VMM itself records
    /// the point enter/exit, helper, transaction, fault and quarantine
    /// events.
    pub fn enable_trace(&mut self, cfg: TraceConfig) {
        let mut tracer = Box::new(Tracer::new(cfg));
        for (_, e) in &mut self.exts {
            e.trace_ext = tracer.intern(&e.name);
        }
        self.tracer = Some(tracer);
    }

    /// The attached flight recorder, if tracing is enabled.
    pub fn tracer_mut(&mut self) -> Option<&mut Tracer> {
        self.tracer.as_deref_mut()
    }

    /// Whether a flight recorder is attached.
    pub fn trace_enabled(&self) -> bool {
        self.tracer.is_some()
    }

    /// Drain the flight recorder into a mergeable [`TraceDump`] (ring and
    /// postmortems cleared; interned ids stay stable). `None` when
    /// tracing was never enabled.
    pub fn take_trace(&mut self) -> Option<TraceDump> {
        self.tracer.as_deref_mut().map(Tracer::take_dump)
    }

    /// Turn on the execution profiler: per-extension fuel histograms,
    /// per-helper call counts and latency attribution, and a per-point
    /// VM-vs-helper time breakdown, all exported by
    /// [`Vmm::metrics_snapshot`] as `xbgp_prof_*` series. Costs nothing
    /// when off — the interpreter's metered loop is unchanged, and the
    /// dispatcher's fast path is a single is-none branch.
    pub fn enable_profile(&mut self) {
        if self.profiler.is_none() {
            self.profiler = Some(Box::new(VmProfiler {
                fuel: (0..self.exts.len()).map(|_| Histogram::new()).collect(),
                ..VmProfiler::default()
            }));
        }
    }

    /// Whether the execution profiler is on.
    pub fn profile_enabled(&self) -> bool {
        self.profiler.is_some()
    }

    /// Point-in-time snapshot of every VMM metric:
    ///
    /// * `xbgp_vmm_runs_total{point}` and its outcome split
    ///   `xbgp_vmm_values_total` / `xbgp_vmm_fallbacks_total` /
    ///   `xbgp_vmm_errors_total` / `xbgp_vmm_rollbacks_total` /
    ///   `xbgp_vmm_aborts_total` (the fault-path counters count even with
    ///   metrics disabled);
    /// * `xbgp_vmm_quarantines_total` and `xbgp_vmm_commit_faults_total`
    ///   (unlabelled), plus a per-extension
    ///   `xbgp_vmm_extension_quarantined` 0/1 gauge-as-counter;
    /// * `xbgp_vmm_run_latency_ns{point}` histograms (timing enabled only);
    /// * per-extension `xbgp_vmm_extension_runs_total` /
    ///   `..._errors_total` / `..._fallbacks_total` /
    ///   `..._helper_calls_total` / `..._insns_total` and
    ///   `xbgp_vmm_extension_latency_ns`, labelled
    ///   `{extension,point}`;
    /// * with the profiler on ([`Vmm::enable_profile`]): `xbgp_prof_fuel`
    ///   histograms `{extension,point}`, `xbgp_prof_helper_calls_total` /
    ///   `xbgp_prof_helper_ns_total` `{helper}`, and per-point
    ///   `xbgp_prof_point_vm_ns_total` / `xbgp_prof_point_helper_ns_total`.
    pub fn metrics_snapshot(&self) -> Snapshot {
        let mut s = Snapshot::new();
        for point in InsertionPoint::ALL {
            let pm = &self.points[point_index(point)];
            let labels = [("point", point.name())];
            s.push_counter("xbgp_vmm_runs_total", &labels, pm.runs);
            s.push_counter("xbgp_vmm_values_total", &labels, pm.values);
            s.push_counter("xbgp_vmm_fallbacks_total", &labels, pm.fallbacks);
            s.push_counter("xbgp_vmm_errors_total", &labels, pm.errors);
            s.push_counter("xbgp_vmm_rollbacks_total", &labels, pm.rollbacks);
            s.push_counter("xbgp_vmm_aborts_total", &labels, pm.aborts);
            if self.metrics_enabled {
                s.push_histogram("xbgp_vmm_run_latency_ns", &labels, pm.latency.snapshot());
            }
        }
        s.push_counter("xbgp_vmm_quarantines_total", &[], self.quarantines);
        s.push_counter("xbgp_vmm_commit_faults_total", &[], self.commit_faults);
        for (point, e) in &self.exts {
            let labels = [("extension", e.name.as_str()), ("point", point.name())];
            s.push_counter("xbgp_vmm_extension_runs_total", &labels, e.runs);
            s.push_counter("xbgp_vmm_extension_errors_total", &labels, e.errors);
            s.push_counter("xbgp_vmm_extension_fallbacks_total", &labels, e.fallbacks);
            s.push_counter("xbgp_vmm_extension_helper_calls_total", &labels, e.helper_calls);
            s.push_counter("xbgp_vmm_extension_insns_total", &labels, e.insns_retired);
            s.push_counter("xbgp_vmm_extension_quarantined", &labels, u64::from(e.quarantined));
            if self.metrics_enabled {
                s.push_histogram("xbgp_vmm_extension_latency_ns", &labels, e.latency.snapshot());
            }
        }
        if let Some(p) = &self.profiler {
            for ((point, e), fuel) in self.exts.iter().zip(&p.fuel) {
                s.push_histogram(
                    "xbgp_prof_fuel",
                    &[("extension", e.name.as_str()), ("point", point.name())],
                    fuel.snapshot(),
                );
            }
            for (&id, &n) in &p.helper_calls {
                let name = helper::name_of(id).unwrap_or("unknown");
                s.push_counter("xbgp_prof_helper_calls_total", &[("helper", name)], n);
            }
            for (&id, &ns) in &p.helper_ns {
                let name = helper::name_of(id).unwrap_or("unknown");
                s.push_counter("xbgp_prof_helper_ns_total", &[("helper", name)], ns);
            }
            for point in InsertionPoint::ALL {
                let i = point_index(point);
                let labels = [("point", point.name())];
                let helper_ns = p.point_helper_ns[i];
                s.push_counter("xbgp_prof_point_helper_ns_total", &labels, helper_ns);
                s.push_counter(
                    "xbgp_prof_point_vm_ns_total",
                    &labels,
                    p.point_total_ns[i].saturating_sub(helper_ns),
                );
            }
        }
        s
    }
}

/// Translates helper calls from the VM into `HostApi` calls, mediating all
/// data movement through the sandboxed memory map.
struct Dispatcher<'a> {
    host: &'a mut dyn HostApi,
    xtra: &'a HashMap<String, Vec<u8>>,
    shared: &'a mut SharedMeta,
    /// VMM-owned marshalling buffer, reused across helper calls and runs.
    scratch: &'a mut Vec<u8>,
    /// Chain-scoped transaction: every host mutation stages here and
    /// reaches the host only if the whole chain finishes cleanly.
    txn: &'a mut Txn,
    /// Policy cap on what `ctx_malloc` may hand out this run.
    mem_cap: usize,
    heap_used: usize,
    /// Flight recorder, present only while tracing is enabled: helper
    /// calls and staged mutations become route-scoped events.
    tracer: Option<&'a mut Tracer>,
    /// Profiler accumulators, present only while profiling is enabled.
    prof: Option<&'a mut VmProfiler>,
    /// Insertion-point index of the running chain (event/profile labels).
    pi: usize,
    /// Interned trace-name id of the running extension.
    ext_tid: u16,
}

/// The staged-mutation op a helper id maps to for the `txn_stage` trace
/// payload: `(op, attr_code)` with op 1 set / 2 add / 3 remove /
/// 4 write-buf / 5 rib-add.
fn stage_op(id: u32, args: &[u64; 5]) -> Option<(u64, u64)> {
    match id {
        helper::SET_ATTR => Some((1, args[0])),
        helper::ADD_ATTR => Some((2, args[0])),
        helper::REMOVE_ATTR => Some((3, args[0])),
        helper::WRITE_BUF => Some((4, 0)),
        helper::RIB_ADD_ROUTE => Some((5, 0)),
        _ => None,
    }
}

impl Dispatcher<'_> {
    /// Bump-allocate `size` bytes (8-aligned) in the ephemeral heap.
    fn heap_alloc(&mut self, size: usize) -> Option<u64> {
        let aligned = (size + 7) & !7;
        if self.heap_used + aligned > self.mem_cap {
            return None;
        }
        let addr = HEAP_BASE + self.heap_used as u64;
        self.heap_used += aligned;
        Some(addr)
    }

    /// Allocate and fill a marshalled struct, returning its address.
    fn marshal(&mut self, mem: &mut MemoryMap, bytes: &[u8]) -> Result<u64, VmError> {
        let Some(addr) = self.heap_alloc(bytes.len()) else {
            return Ok(0);
        };
        mem.write_bytes(addr, bytes)?;
        Ok(addr)
    }
}

fn fault(helper: u32, reason: impl Into<String>) -> VmError {
    // `pc` is a placeholder; the interpreter stamps the faulting
    // instruction's pc at the call site (`VmError::at_pc`).
    VmError::HelperFault { pc: 0, helper, reason: reason.into() }
}

impl HelperDispatcher for Dispatcher<'_> {
    fn call(
        &mut self,
        id: u32,
        args: [u64; 5],
        mem: &mut MemoryMap,
    ) -> Result<HelperOutcome, VmError> {
        // Fast path: neither tracing nor profiling — one predictable
        // branch, then straight into the helper switch. The interpreter's
        // metered loop above this is untouched either way.
        if self.prof.is_none() && self.tracer.is_none() {
            return self.dispatch(id, args, mem);
        }
        let t0 = self.prof.is_some().then(Instant::now);
        let out = self.dispatch(id, args, mem);
        let ns = t0.map_or(0, |t| t.elapsed().as_nanos() as u64);
        if let Some(p) = self.prof.as_deref_mut() {
            *p.helper_calls.entry(id).or_insert(0) += 1;
            *p.helper_ns.entry(id).or_insert(0) += ns;
            p.point_helper_ns[self.pi] += ns;
        }
        if let Some(t) = self.tracer.as_deref_mut() {
            if t.route_active() {
                t.record(TraceKind::HelperCall, self.pi as u8, self.ext_tid, u64::from(id), ns);
                // A successful staging helper also leaves a `txn_stage`
                // breadcrumb, so a trace shows what a later commit or
                // rollback acted on.
                if let Ok(HelperOutcome::Value(v)) = &out {
                    if *v != api::XBGP_FAIL {
                        if let Some((op, attr)) = stage_op(id, &args) {
                            t.record(TraceKind::TxnStage, self.pi as u8, self.ext_tid, op, attr);
                        }
                    }
                }
            }
        }
        out
    }
}

impl Dispatcher<'_> {
    /// The helper switch proper, shared by the instrumented and
    /// fast-path entries of [`HelperDispatcher::call`].
    fn dispatch(
        &mut self,
        id: u32,
        args: [u64; 5],
        mem: &mut MemoryMap,
    ) -> Result<HelperOutcome, VmError> {
        use HelperOutcome::Value;
        let out = match id {
            helper::NEXT => return Ok(HelperOutcome::Next),
            helper::ARG_LEN => match self.host.arg(args[0] as u32) {
                Some(a) => Value(a.len() as u64),
                None => Value(api::XBGP_FAIL),
            },
            helper::GET_ARG => {
                let (idx, dst, cap) = (args[0] as u32, args[1], args[2] as usize);
                // Copy straight from the host's borrow into sandbox memory;
                // no intermediate allocation.
                let Dispatcher { host, .. } = self;
                match host.arg(idx) {
                    Some(a) if a.len() <= cap => {
                        let n = a.len() as u64;
                        mem.write_bytes(dst, a)?;
                        Value(n)
                    }
                    _ => Value(api::XBGP_FAIL),
                }
            }
            helper::GET_PEER_INFO => {
                let bytes = self.host.peer_info().to_bytes();
                Value(self.marshal(mem, &bytes)?)
            }
            helper::GET_NEXTHOP => match self.host.nexthop_info() {
                Some(nh) => Value(self.marshal(mem, &nh.to_bytes())?),
                None => Value(0),
            },
            helper::GET_PREFIX => match self.host.prefix() {
                Some(p) => {
                    let mut b = [0u8; api::PREFIX_INFO_SIZE];
                    b[0..4].copy_from_slice(&p.addr().to_le_bytes());
                    b[4..8].copy_from_slice(&u32::from(p.len()).to_le_bytes());
                    Value(self.marshal(mem, &b)?)
                }
                None => Value(0),
            },
            helper::GET_ATTR => {
                let (code, dst, cap) = (args[0] as u8, args[1], args[2] as usize);
                // Marshal through the VMM's reused scratch buffer instead
                // of a fresh Vec per call. Reads see the chain's own staged
                // writes first (read-your-writes), then the host.
                let Dispatcher { host, scratch, txn, .. } = self;
                scratch.clear();
                let flags = match txn.staged(code) {
                    Some(Some((flags, value))) => {
                        scratch.extend_from_slice(value);
                        Some(*flags)
                    }
                    Some(None) => None, // staged removal
                    None => host.get_attr_into(code, scratch),
                };
                match flags {
                    Some(_) if scratch.len() <= cap => {
                        mem.write_bytes(dst, scratch)?;
                        Value(scratch.len() as u64)
                    }
                    _ => Value(api::XBGP_FAIL),
                }
            }
            helper::SET_ATTR => {
                let (code, flags, ptr, len) =
                    (args[0] as u8, args[1] as u8, args[2], args[3] as usize);
                let data = mem.slice(ptr, len)?;
                match self.host.check_op(&HostOp::SetAttr { code, flags, value: data }) {
                    Ok(()) => {
                        self.txn.stage_attr(code, Some((flags, data.to_vec())));
                        Value(0)
                    }
                    Err(e) if e.recoverable() => Value(api::XBGP_FAIL),
                    Err(e) => return Err(fault(id, e.to_string())),
                }
            }
            helper::ADD_ATTR => {
                let (code, flags, ptr, len) =
                    (args[0] as u8, args[1] as u8, args[2], args[3] as usize);
                let present = match self.txn.staged(code) {
                    Some(entry) => entry.is_some(),
                    None => self.host.has_attr(code),
                };
                if present {
                    Value(api::XBGP_FAIL)
                } else {
                    let data = mem.slice(ptr, len)?;
                    match self.host.check_op(&HostOp::SetAttr { code, flags, value: data }) {
                        Ok(()) => {
                            self.txn.stage_attr(code, Some((flags, data.to_vec())));
                            Value(0)
                        }
                        Err(e) if e.recoverable() => Value(api::XBGP_FAIL),
                        Err(e) => return Err(fault(id, e.to_string())),
                    }
                }
            }
            helper::REMOVE_ATTR => {
                let code = args[0] as u8;
                let present = match self.txn.staged(code) {
                    Some(entry) => entry.is_some(),
                    None => self.host.has_attr(code),
                };
                if !present {
                    // `AttrNotPresent`: recoverable by definition.
                    Value(api::XBGP_FAIL)
                } else {
                    match self.host.check_op(&HostOp::RemoveAttr { code }) {
                        Ok(()) => {
                            self.txn.stage_attr(code, None);
                            Value(0)
                        }
                        Err(e) if e.recoverable() => Value(api::XBGP_FAIL),
                        Err(e) => return Err(fault(id, e.to_string())),
                    }
                }
            }
            helper::GET_XTRA => {
                let (key_ptr, key_len, dst, cap) =
                    (args[0], args[1] as usize, args[2], args[3] as usize);
                let key_bytes = mem.slice(key_ptr, key_len)?;
                let key =
                    std::str::from_utf8(key_bytes).map_err(|_| fault(id, "non-UTF-8 xtra key"))?;
                // Borrow manifest-level xtra data in place; only a
                // host-provided answer needs an owned buffer.
                let owned;
                let data: Option<&[u8]> = match self.host.get_xtra(key) {
                    Some(v) => {
                        owned = v;
                        Some(&owned)
                    }
                    None => self.xtra.get(key).map(Vec::as_slice),
                };
                match data {
                    Some(v) if v.len() <= cap => {
                        mem.write_bytes(dst, v)?;
                        Value(v.len() as u64)
                    }
                    _ => Value(api::XBGP_FAIL),
                }
            }
            helper::WRITE_BUF => {
                let (ptr, len) = (args[0], args[1] as usize);
                let data = mem.slice(ptr, len)?;
                match self.host.check_op(&HostOp::WriteBuf { len }) {
                    Ok(()) => {
                        self.txn.out_buf.extend_from_slice(data);
                        Value(len as u64)
                    }
                    Err(e) if e.recoverable() => Value(api::XBGP_FAIL),
                    Err(e) => return Err(fault(id, e.to_string())),
                }
            }
            helper::EBPF_MEMCPY => {
                let (dst, src, len) = (args[0], args[1], args[2] as usize);
                mem.copy_within(dst, src, len)?;
                Value(dst)
            }
            helper::BPF_HTONL | helper::BPF_NTOHL => {
                Value(u64::from((args[0] as u32).swap_bytes()))
            }
            helper::BPF_HTONS | helper::BPF_NTOHS => {
                Value(u64::from((args[0] as u16).swap_bytes()))
            }
            helper::EBPF_PRINT => {
                let (ptr, len) = (args[0], args[1] as usize);
                let data = mem.slice(ptr, len)?;
                let msg = String::from_utf8_lossy(data);
                self.host.log(&msg);
                Value(0)
            }
            helper::CTX_MALLOC => Value(self.heap_alloc(args[0] as usize).unwrap_or(0)),
            helper::CTX_SHARED_MALLOC => {
                let (key, size) = (args[0], args[1] as usize);
                if self.shared.allocs.contains_key(&key) {
                    Value(0)
                } else {
                    let aligned = (size + 7) & !7;
                    if self.shared.used + aligned > SHARED_SIZE {
                        Value(0)
                    } else {
                        let addr = SHARED_BASE + self.shared.used as u64;
                        self.shared.used += aligned;
                        self.shared.allocs.insert(key, (addr, size as u64));
                        Value(addr)
                    }
                }
            }
            helper::CTX_SHARED_GET => {
                Value(self.shared.allocs.get(&args[0]).map(|(a, _)| *a).unwrap_or(0))
            }
            helper::RPKI_CHECK_ORIGIN => {
                let (addr, plen, asn) = (args[0] as u32, args[1] as u8, args[2] as u32);
                if plen > 32 {
                    return Err(fault(id, format!("invalid prefix length {plen}")));
                }
                Value(self.host.check_origin(Ipv4Prefix::new(addr, plen), asn))
            }
            helper::RIB_ADD_ROUTE => {
                let (addr, plen, nexthop) = (args[0] as u32, args[1] as u8, args[2] as u32);
                if plen > 32 {
                    return Err(fault(id, format!("invalid prefix length {plen}")));
                }
                let prefix = Ipv4Prefix::new(addr, plen);
                match self.host.check_op(&HostOp::RibAddRoute { prefix, nexthop }) {
                    Ok(()) => {
                        self.txn.rib_adds.push((prefix, nexthop));
                        Value(0)
                    }
                    Err(e) if e.recoverable() => Value(api::XBGP_FAIL),
                    Err(e) => return Err(fault(id, e.to_string())),
                }
            }
            // `pc: 0` is a placeholder stamped over by the interpreter.
            other => return Err(VmError::UnknownHelper { pc: 0, helper: other }),
        };
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{NextHopInfo, PeerType, EBGP_SESSION, FILTER_REJECT};
    use crate::host::MockHost;
    use crate::manifest::ExtensionSpec;
    use xbgp_asm::assemble_with_symbols;

    fn spec(name: &str, point: InsertionPoint, helpers: &[&str], src: &str) -> ExtensionSpec {
        let prog = assemble_with_symbols(src, &crate::api::abi_symbols()).expect("assembles");
        ExtensionSpec::from_program(name, "test_group", point, helpers, &prog)
    }

    fn load(specs: Vec<ExtensionSpec>) -> Vmm {
        let mut m = Manifest::new();
        for s in specs {
            m.push(s);
        }
        Vmm::from_manifest(&m).expect("loads")
    }

    #[test]
    fn verify_load_counter_counts_per_vmm_not_per_run() {
        // One manifest, four VMMs (the per-shard pattern): each load pays
        // one verify+pre-decode per extension; runs pay none.
        let mut m = Manifest::new();
        m.push(spec("a", InsertionPoint::BgpInboundFilter, &[], "mov r0, 1\nexit"));
        m.push(spec("b", InsertionPoint::BgpDecision, &[], "mov r0, 1\nexit"));
        let before = verify_load_count();
        let mut vmms: Vec<Vmm> = (0..4).map(|_| Vmm::from_manifest(&m).expect("loads")).collect();
        assert_eq!(verify_load_count() - before, 4 * 2);
        let mut host = MockHost::default();
        for vmm in &mut vmms {
            for _ in 0..10 {
                vmm.run(InsertionPoint::BgpInboundFilter, &mut host);
            }
        }
        assert_eq!(verify_load_count() - before, 4 * 2, "runs never re-verify");
    }

    #[test]
    fn manifest_clones_share_bytecode_storage() {
        // The shard path clones one manifest per worker; the Arc'd
        // bytecode must be shared, not duplicated.
        let mut m = Manifest::new();
        m.push(spec("a", InsertionPoint::BgpInboundFilter, &[], "mov r0, 1\nexit"));
        let clone = m.clone();
        assert!(std::sync::Arc::ptr_eq(&m.extensions[0].bytecode, &clone.extensions[0].bytecode));
    }

    #[test]
    fn empty_vmm_always_falls_back() {
        let mut vmm = Vmm::empty();
        let mut host = MockHost::default();
        for p in InsertionPoint::ALL {
            assert_eq!(vmm.run(p, &mut host), VmmOutcome::Fallback);
            assert!(!vmm.has_extensions(p));
        }
    }

    #[test]
    fn extension_value_is_returned() {
        let mut vmm =
            load(vec![spec("ret7", InsertionPoint::BgpInboundFilter, &[], "mov r0, 7\nexit")]);
        let mut host = MockHost::default();
        assert!(vmm.has_extensions(InsertionPoint::BgpInboundFilter));
        assert_eq!(vmm.run(InsertionPoint::BgpInboundFilter, &mut host), VmmOutcome::Value(7));
        // Other points still fall back.
        assert_eq!(vmm.run(InsertionPoint::BgpOutboundFilter, &mut host), VmmOutcome::Fallback);
    }

    #[test]
    fn next_chains_to_following_extension_then_native() {
        let first =
            spec("delegate", InsertionPoint::BgpInboundFilter, &["next"], "call next\nexit");
        let second = spec("answer", InsertionPoint::BgpInboundFilter, &[], "mov r0, 42\nexit");
        let mut vmm = load(vec![first.clone(), second]);
        let mut host = MockHost::default();
        assert_eq!(vmm.run(InsertionPoint::BgpInboundFilter, &mut host), VmmOutcome::Value(42));

        // A chain where everyone delegates falls back to native code.
        let mut vmm = load(vec![first.clone(), first]);
        assert_eq!(vmm.run(InsertionPoint::BgpInboundFilter, &mut host), VmmOutcome::Fallback);
    }

    #[test]
    fn faulting_extension_falls_back_and_is_recorded() {
        // Dereference an unmapped address.
        let mut vmm = load(vec![spec(
            "crasher",
            InsertionPoint::BgpInboundFilter,
            &[],
            "lddw r1, 0x999999999\nldxb r0, [r1]\nexit",
        )]);
        let mut host = MockHost::default();
        assert_eq!(vmm.run(InsertionPoint::BgpInboundFilter, &mut host), VmmOutcome::Fallback);
        let (name, err) = vmm.last_error().expect("error recorded");
        assert_eq!(name, "crasher");
        assert!(matches!(err, VmError::MemFault { .. }));
        assert_eq!(host.logs.len(), 1, "host notified of the error");
        assert!(host.logs[0].contains("crasher"));
        let stats = vmm.stats();
        assert_eq!(stats[0].runs, 1);
        assert_eq!(stats[0].errors, 1);
    }

    #[test]
    fn last_error_is_cleared_by_a_subsequent_successful_run() {
        let mut vmm = load(vec![
            spec(
                "crasher",
                InsertionPoint::BgpInboundFilter,
                &[],
                "lddw r1, 0x999999999\nldxb r0, [r1]\nexit",
            ),
            spec("ret7", InsertionPoint::BgpDecision, &[], "mov r0, 7\nexit"),
            spec("delegate", InsertionPoint::BgpOutboundFilter, &["next"], "call next\nexit"),
        ]);
        let mut host = MockHost::default();
        assert_eq!(vmm.run(InsertionPoint::BgpInboundFilter, &mut host), VmmOutcome::Fallback);
        assert!(vmm.last_error().is_some());

        // A later run that returns a value clears the stale diagnostic.
        assert_eq!(vmm.run(InsertionPoint::BgpDecision, &mut host), VmmOutcome::Value(7));
        assert!(vmm.last_error().is_none(), "cleared after a successful run");

        // A clean all-`next()` fallback is also a successful run.
        assert_eq!(vmm.run(InsertionPoint::BgpInboundFilter, &mut host), VmmOutcome::Fallback);
        assert!(vmm.last_error().is_some());
        assert_eq!(vmm.run(InsertionPoint::BgpOutboundFilter, &mut host), VmmOutcome::Fallback);
        assert!(vmm.last_error().is_none(), "cleared after a clean fallback");
    }

    #[test]
    fn metrics_snapshot_records_outcomes_and_faults() {
        let mut vmm = load(vec![
            spec(
                "crasher",
                InsertionPoint::BgpInboundFilter,
                &[],
                "lddw r1, 0x999999999\nldxb r0, [r1]\nexit",
            ),
            spec("ret7", InsertionPoint::BgpDecision, &[], "mov r0, 7\nexit"),
        ]);
        vmm.enable_metrics();
        let mut host = MockHost::default();
        assert_eq!(
            vmm.run(InsertionPoint::BgpInboundFilter, &mut host),
            VmmOutcome::Fallback,
            "fault falls back to native behaviour"
        );
        vmm.run(InsertionPoint::BgpDecision, &mut host);
        vmm.run(InsertionPoint::BgpDecision, &mut host);
        // A point with nothing attached still counts its (fallback) runs.
        vmm.run(InsertionPoint::BgpEncodeMessage, &mut host);

        let s = vmm.metrics_snapshot();
        let inbound = [("point", "bgp_inbound_filter")];
        assert_eq!(s.counter_value("xbgp_vmm_runs_total", &inbound), Some(1));
        assert_eq!(s.counter_value("xbgp_vmm_errors_total", &inbound), Some(1));
        assert_eq!(s.counter_value("xbgp_vmm_values_total", &inbound), Some(0));
        let decision = [("point", "bgp_decision")];
        assert_eq!(s.counter_value("xbgp_vmm_runs_total", &decision), Some(2));
        assert_eq!(s.counter_value("xbgp_vmm_values_total", &decision), Some(2));
        assert_eq!(
            s.counter_value("xbgp_vmm_fallbacks_total", &[("point", "bgp_encode_message")]),
            Some(1)
        );
        assert_eq!(
            s.counter_value("xbgp_vmm_extension_errors_total", &[("extension", "crasher")]),
            Some(1)
        );
        // `mov r0, 7; exit` is 2 instructions, run twice.
        assert_eq!(
            s.counter_value("xbgp_vmm_extension_insns_total", &[("extension", "ret7")]),
            Some(4)
        );
    }

    #[test]
    fn enabled_metrics_time_runs_and_count_helper_calls() {
        let mut vmm = load(vec![spec(
            "delegate",
            InsertionPoint::BgpInboundFilter,
            &["next"],
            "call next\nexit",
        )]);
        assert!(!vmm.metrics_enabled());
        vmm.enable_metrics();
        assert!(vmm.metrics_enabled());
        let mut host = MockHost::default();
        for _ in 0..3 {
            assert_eq!(vmm.run(InsertionPoint::BgpInboundFilter, &mut host), VmmOutcome::Fallback);
        }
        let stats = vmm.stats();
        assert_eq!(stats[0].runs, 3);
        assert_eq!(stats[0].fallbacks, 3);
        assert_eq!(stats[0].helper_calls, 3);
        // Only the `call next` instruction retires; `exit` is never reached.
        assert_eq!(stats[0].insns_retired, 3);

        let s = vmm.metrics_snapshot();
        let labels = [("point", "bgp_inbound_filter")];
        assert_eq!(
            s.histogram_value("xbgp_vmm_run_latency_ns", &labels)
                .expect("latency histogram present when metrics are enabled")
                .count,
            3
        );
        assert_eq!(
            s.histogram_value("xbgp_vmm_extension_latency_ns", &[("extension", "delegate")])
                .expect("per-extension latency")
                .count,
            3
        );
    }

    #[test]
    fn installed_recorder_receives_run_events() {
        use std::sync::Arc;
        use xbgp_obs::{Registry, RegistryRecorder};

        let registry = Arc::new(Registry::new());
        let mut vmm =
            load(vec![spec("ret7", InsertionPoint::BgpInboundFilter, &[], "mov r0, 7\nexit")]);
        vmm.enable_metrics();
        vmm.set_recorder(Box::new(RegistryRecorder::new(Arc::clone(&registry))));
        let mut host = MockHost::default();
        vmm.run(InsertionPoint::BgpInboundFilter, &mut host);
        vmm.run(InsertionPoint::BgpInboundFilter, &mut host);

        let s = registry.snapshot();
        assert_eq!(
            s.counter_value(
                "xbgp_vmm_runs_total",
                &[("point", "bgp_inbound_filter"), ("outcome", "value")]
            ),
            Some(2)
        );
        assert_eq!(
            s.histogram_value("xbgp_vmm_run_latency_ns", &[("point", "bgp_inbound_filter")])
                .expect("recorder saw latency observations")
                .count,
            2
        );
    }

    #[test]
    fn runaway_extension_is_stopped() {
        let mut vmm =
            load(vec![spec("spinner", InsertionPoint::BgpDecision, &[], "loop: ja loop")]);
        vmm.set_fuel(10_000);
        let mut host = MockHost::default();
        assert_eq!(vmm.run(InsertionPoint::BgpDecision, &mut host), VmmOutcome::Fallback);
        assert!(matches!(vmm.last_error(), Some((_, VmError::FuelExhausted { .. }))));
    }

    #[test]
    fn verifier_enforces_declared_helpers() {
        // Program calls get_peer_info but only declares next.
        let prog =
            assemble_with_symbols("call get_peer_info\nexit", &crate::api::abi_symbols()).unwrap();
        let mut m = Manifest::new();
        m.push(ExtensionSpec::from_program(
            "sneaky",
            "g",
            InsertionPoint::BgpInboundFilter,
            &["next"],
            &prog,
        ));
        match Vmm::from_manifest(&m) {
            Err(VmmError::Rejected { extension, error }) => {
                assert_eq!(extension, "sneaky");
                assert!(matches!(error, VerifyError::UnknownHelper { .. }));
            }
            Ok(_) => panic!("expected rejection, got a loaded VMM"),
            Err(other) => panic!("expected rejection, got {other:?}"),
        }
    }

    #[test]
    fn unknown_helper_name_in_manifest_rejected() {
        let prog = assemble_with_symbols("mov r0, 0\nexit", &crate::api::abi_symbols()).unwrap();
        let mut m = Manifest::new();
        m.push(ExtensionSpec::from_program(
            "x",
            "g",
            InsertionPoint::BgpInboundFilter,
            &["frobnicate"],
            &prog,
        ));
        assert!(matches!(Vmm::from_manifest(&m), Err(VmmError::UnknownHelperName { .. })));
    }

    #[test]
    fn peer_info_reaches_extension() {
        // Return the peer type read through get_peer_info.
        let src = r"
            call get_peer_info
            ldxw r0, [r0+PEER_INFO_OFF_TYPE]
            exit
        ";
        let mut vmm = load(vec![spec(
            "peer_type",
            InsertionPoint::BgpInboundFilter,
            &["get_peer_info"],
            src,
        )]);
        let mut host = MockHost::default();
        host.peer.peer_type = PeerType::Ebgp;
        assert_eq!(
            vmm.run(InsertionPoint::BgpInboundFilter, &mut host),
            VmmOutcome::Value(EBGP_SESSION)
        );
        host.peer.peer_type = PeerType::Ibgp;
        assert_eq!(vmm.run(InsertionPoint::BgpInboundFilter, &mut host), VmmOutcome::Value(0));
    }

    #[test]
    fn nexthop_metric_filter_like_listing_1() {
        // The paper's Listing 1 shape: reject eBGP routes whose nexthop
        // IGP metric exceeds 1000, else next().
        let src = r"
            .equ MAX_METRIC, 1000
            call get_peer_info
            ldxw r6, [r0+PEER_INFO_OFF_TYPE]
            jeq r6, EBGP_SESSION, ebgp
            call next
        ebgp:
            call get_nexthop
            jeq r0, 0, reject
            ldxw r7, [r0+NEXTHOP_OFF_IGP_METRIC]
            jgt r7, MAX_METRIC, reject
            call next
        reject:
            mov r0, FILTER_REJECT
            exit
        ";
        let mut vmm = load(vec![spec(
            "export_igp",
            InsertionPoint::BgpOutboundFilter,
            &["get_peer_info", "get_nexthop", "next"],
            src,
        )]);
        let mut host = MockHost::default();
        host.peer.peer_type = PeerType::Ebgp;
        host.nexthop = Some(NextHopInfo { addr: 1, igp_metric: 2000, reachable: true });
        assert_eq!(
            vmm.run(InsertionPoint::BgpOutboundFilter, &mut host),
            VmmOutcome::Value(FILTER_REJECT)
        );
        host.nexthop = Some(NextHopInfo { addr: 1, igp_metric: 10, reachable: true });
        assert_eq!(vmm.run(InsertionPoint::BgpOutboundFilter, &mut host), VmmOutcome::Fallback);
        host.peer.peer_type = PeerType::Ibgp;
        host.nexthop = Some(NextHopInfo { addr: 1, igp_metric: 2000, reachable: true });
        assert_eq!(
            vmm.run(InsertionPoint::BgpOutboundFilter, &mut host),
            VmmOutcome::Fallback,
            "iBGP sessions are not filtered"
        );
    }

    #[test]
    fn attributes_read_and_written_through_host() {
        // Read LOCAL_PREF (4 bytes NBO) into the stack, add 10, set it back.
        let src = r"
            mov r6, r10
            sub r6, 8
            mov r1, ATTR_LOCAL_PREF
            mov r2, r6
            mov r3, 4
            call get_attr
            jeq r0, -1, fail
            ldxw r1, [r6]
            be32 r1            ; wire is big-endian; make it host order
            add r1, 10
            be32 r1            ; back to network order
            stxw [r6], r1
            mov r1, ATTR_LOCAL_PREF
            mov r2, ATTR_FLAGS_WELL_KNOWN
            mov r3, r6
            mov r4, 4
            call set_attr
            mov r0, 0
            exit
        fail:
            mov r0, 1
            exit
        ";
        let mut vmm = load(vec![spec(
            "bump_pref",
            InsertionPoint::BgpInboundFilter,
            &["get_attr", "set_attr"],
            src,
        )]);
        let mut host = MockHost::default();
        host.attrs.push((5, 0x40, 100u32.to_be_bytes().to_vec()));
        assert_eq!(vmm.run(InsertionPoint::BgpInboundFilter, &mut host), VmmOutcome::Value(0));
        assert_eq!(host.attrs[0].2, 110u32.to_be_bytes().to_vec());
    }

    #[test]
    fn add_attr_fails_when_attribute_exists() {
        let src = r"
            mov r1, 66
            mov r2, ATTR_FLAGS_OPT_TRANS
            mov r3, r10
            sub r3, 8
            stdw [r10-8], 0
            mov r4, 8
            call add_attr
            exit
        ";
        let mut vmm =
            load(vec![spec("adder", InsertionPoint::BgpReceiveMessage, &["add_attr"], src)]);
        let mut host = MockHost::default();
        assert_eq!(vmm.run(InsertionPoint::BgpReceiveMessage, &mut host), VmmOutcome::Value(0));
        assert_eq!(host.attrs.len(), 1);
        assert_eq!(host.attrs[0].0, 66);
        // Second add fails: attribute already present.
        assert_eq!(
            vmm.run(InsertionPoint::BgpReceiveMessage, &mut host),
            VmmOutcome::Value(api::XBGP_FAIL)
        );
        assert_eq!(host.attrs.len(), 1);
    }

    /// `set_attr(66, <8 zero bytes>)` then dereference an unmapped address.
    const STAGE_THEN_TRAP: &str = r"
        mov r1, 66
        mov r2, ATTR_FLAGS_OPT_TRANS
        mov r3, r10
        sub r3, 8
        stdw [r10-8], 0
        mov r4, 8
        call set_attr
        mov r1, 66
        mov r2, ATTR_FLAGS_OPT_TRANS
        mov r3, r10
        sub r3, 8
        mov r4, 8
        call set_attr
        lddw r1, 0x999999999
        ldxb r0, [r1]
        exit
    ";

    #[test]
    fn trap_after_staged_mutations_rolls_back_host() {
        let mut vmm = load(vec![spec(
            "stage_then_trap",
            InsertionPoint::BgpInboundFilter,
            &["set_attr"],
            STAGE_THEN_TRAP,
        )]);
        let mut host = MockHost::default();
        host.attrs.push((5, 0x40, 100u32.to_be_bytes().to_vec()));
        let native = host.attrs.clone();
        assert_eq!(vmm.run(InsertionPoint::BgpInboundFilter, &mut host), VmmOutcome::Fallback);
        assert_eq!(host.attrs, native, "staged set_attr never reached the host");
        assert!(host.out_buf.is_empty());
        // Fault-path counters count even with metrics disabled.
        let s = vmm.metrics_snapshot();
        let inbound = [("point", "bgp_inbound_filter")];
        assert_eq!(s.counter_value("xbgp_vmm_rollbacks_total", &inbound), Some(1));
        assert_eq!(s.counter_value("xbgp_vmm_errors_total", &inbound), Some(1));
    }

    #[test]
    fn chain_reads_see_staged_writes_and_commit_on_value() {
        // First extension stages attribute 66 = [7, 0, ...] and delegates;
        // the second reads it back through get_attr (served from the
        // transaction overlay) and returns its first byte.
        let writer_src = r"
            mov r1, 66
            mov r2, ATTR_FLAGS_OPT_TRANS
            mov r3, r10
            sub r3, 8
            stdw [r10-8], 7
            mov r4, 8
            call add_attr
            call next
            exit
        ";
        let reader_src = r"
            mov r1, 66
            mov r2, r10
            sub r2, 8
            mov r3, 8
            call get_attr
            jeq r0, -1, missing
            ldxb r0, [r10-8]
            exit
        missing:
            mov r0, 255
            exit
        ";
        let mut vmm = load(vec![
            spec("writer", InsertionPoint::BgpInboundFilter, &["add_attr", "next"], writer_src),
            spec("reader", InsertionPoint::BgpInboundFilter, &["get_attr"], reader_src),
        ]);
        let mut host = MockHost::default();
        assert_eq!(
            vmm.run(InsertionPoint::BgpInboundFilter, &mut host),
            VmmOutcome::Value(7),
            "reader saw the writer's staged attribute"
        );
        assert_eq!(host.attrs.len(), 1, "value outcome committed the staged write");
        assert_eq!(host.attrs[0].0, 66);
    }

    #[test]
    fn staged_writes_commit_on_clean_all_next_fallback() {
        let writer_src = r"
            mov r1, 66
            mov r2, ATTR_FLAGS_OPT_TRANS
            mov r3, r10
            sub r3, 8
            stdw [r10-8], 7
            mov r4, 8
            call add_attr
            call next
            exit
        ";
        let mut vmm = load(vec![spec(
            "writer",
            InsertionPoint::BgpInboundFilter,
            &["add_attr", "next"],
            writer_src,
        )]);
        let mut host = MockHost::default();
        assert_eq!(vmm.run(InsertionPoint::BgpInboundFilter, &mut host), VmmOutcome::Fallback);
        assert_eq!(host.attrs.len(), 1, "clean delegation is a committing outcome");
    }

    #[test]
    fn quarantine_trips_after_consecutive_faults() {
        let mut vmm = load(vec![spec(
            "crasher",
            InsertionPoint::BgpInboundFilter,
            &[],
            "lddw r1, 0x999999999\nldxb r0, [r1]\nexit",
        )]);
        let mut host = MockHost::default();
        for _ in 0..QUARANTINE_THRESHOLD {
            assert_eq!(vmm.run(InsertionPoint::BgpInboundFilter, &mut host), VmmOutcome::Fallback);
        }
        let stats = vmm.stats();
        assert!(stats[0].quarantined);
        assert_eq!(stats[0].runs, u64::from(QUARANTINE_THRESHOLD));
        assert!(
            !vmm.has_extensions(InsertionPoint::BgpInboundFilter),
            "chain re-cached without it"
        );
        assert!(
            host.logs.iter().any(|l| l.contains("quarantined")),
            "host told about the quarantine"
        );
        // Further runs never dispatch the quarantined extension.
        vmm.run(InsertionPoint::BgpInboundFilter, &mut host);
        assert_eq!(vmm.stats()[0].runs, u64::from(QUARANTINE_THRESHOLD));
        let s = vmm.metrics_snapshot();
        assert_eq!(s.counter_value("xbgp_vmm_quarantines_total", &[]), Some(1));
        assert_eq!(
            s.counter_value("xbgp_vmm_extension_quarantined", &[("extension", "crasher")]),
            Some(1)
        );
    }

    #[test]
    fn clean_run_resets_the_fault_streak() {
        // A bounded loop: faults under a tiny budget, returns under a
        // large one — lets the test alternate outcomes via set_fuel.
        let src = r"
            mov r1, 100
        loop:
            sub r1, 1
            jne r1, 0, loop
            mov r0, 0
            exit
        ";
        let mut vmm = load(vec![spec("bounded", InsertionPoint::BgpDecision, &[], src)]);
        let mut host = MockHost::default();
        vmm.set_fuel(10);
        for _ in 0..QUARANTINE_THRESHOLD - 1 {
            assert_eq!(vmm.run(InsertionPoint::BgpDecision, &mut host), VmmOutcome::Fallback);
        }
        vmm.set_fuel(1_000_000);
        assert_eq!(vmm.run(InsertionPoint::BgpDecision, &mut host), VmmOutcome::Value(0));
        vmm.set_fuel(10);
        for _ in 0..QUARANTINE_THRESHOLD - 1 {
            assert_eq!(vmm.run(InsertionPoint::BgpDecision, &mut host), VmmOutcome::Fallback);
        }
        assert!(!vmm.stats()[0].quarantined, "the clean run reset the streak");
        assert!(vmm.has_extensions(InsertionPoint::BgpDecision));
        vmm.run(InsertionPoint::BgpDecision, &mut host);
        assert!(vmm.stats()[0].quarantined, "the streak completed after the reset");
    }

    #[test]
    fn abort_policy_fails_closed_instead_of_falling_back() {
        let mut s = spec(
            "strict",
            InsertionPoint::BgpInboundFilter,
            &[],
            "lddw r1, 0x999999999\nldxb r0, [r1]\nexit",
        );
        s.on_fault = crate::policy::OnFault::Abort;
        let mut vmm = load(vec![s]);
        let mut host = MockHost::default();
        assert_eq!(vmm.run(InsertionPoint::BgpInboundFilter, &mut host), VmmOutcome::Aborted);
        let snap = vmm.metrics_snapshot();
        let inbound = [("point", "bgp_inbound_filter")];
        assert_eq!(snap.counter_value("xbgp_vmm_aborts_total", &inbound), Some(1));
        assert_eq!(snap.counter_value("xbgp_vmm_errors_total", &inbound), Some(1));
    }

    #[test]
    fn manifest_fuel_override_beats_the_vmm_default() {
        let mut s = spec("spinner", InsertionPoint::BgpDecision, &[], "loop: ja loop");
        s.fuel = Some(50);
        let mut vmm = load(vec![s]);
        vmm.set_fuel(u64::MAX); // the global default must not apply
        let mut host = MockHost::default();
        assert_eq!(vmm.run(InsertionPoint::BgpDecision, &mut host), VmmOutcome::Fallback);
        assert!(matches!(vmm.last_error(), Some((_, VmError::FuelExhausted { .. }))));
        let policy = vmm.policy_of("spinner").unwrap();
        assert_eq!(policy.fuel, 50);
        assert_eq!(policy.on_fault, crate::policy::OnFault::Fallback);
    }

    #[test]
    fn mem_cap_limits_ephemeral_allocation() {
        // ctx_malloc(64) twice; returns how many came back non-null.
        let src = r"
            mov r6, 0
            mov r1, 64
            call ctx_malloc
            jeq r0, 0, second
            add r6, 1
        second:
            mov r1, 64
            call ctx_malloc
            jeq r0, 0, done
            add r6, 1
        done:
            mov r0, r6
            exit
        ";
        let mut vmm =
            load(vec![spec("allocator", InsertionPoint::BgpDecision, &["ctx_malloc"], src)]);
        let mut host = MockHost::default();
        assert_eq!(vmm.run(InsertionPoint::BgpDecision, &mut host), VmmOutcome::Value(2));
        vmm.set_mem_cap("allocator", 64);
        assert_eq!(
            vmm.run(InsertionPoint::BgpDecision, &mut host),
            VmmOutcome::Value(1),
            "the second allocation exceeds the 64-byte cap"
        );
        assert_eq!(vmm.policy_of("allocator").unwrap().mem_cap, 64);
    }

    #[test]
    fn read_only_attr_write_is_a_hard_fault_with_rollback() {
        // Stage one good write, then hit a denied code: the whole
        // transaction — including the good write — must roll back.
        let src = r"
            mov r1, 66
            mov r2, ATTR_FLAGS_OPT_TRANS
            mov r3, r10
            sub r3, 8
            stdw [r10-8], 0
            mov r4, 8
            call set_attr
            mov r1, 5
            mov r2, ATTR_FLAGS_WELL_KNOWN
            mov r3, r10
            sub r3, 8
            mov r4, 4
            call set_attr
            mov r0, 0
            exit
        ";
        let mut vmm =
            load(vec![spec("toucher", InsertionPoint::BgpInboundFilter, &["set_attr"], src)]);
        let mut host = MockHost { deny_attrs: vec![5], ..MockHost::default() };
        assert_eq!(vmm.run(InsertionPoint::BgpInboundFilter, &mut host), VmmOutcome::Fallback);
        let (name, err) = vmm.last_error().expect("hard fault recorded");
        assert_eq!(name, "toucher");
        match err {
            VmError::HelperFault { reason, .. } => {
                assert!(reason.contains("read-only"), "typed reason surfaced: {reason}")
            }
            other => panic!("expected HelperFault, got {other:?}"),
        }
        assert!(host.attrs.is_empty(), "the staged attribute 66 rolled back too");
    }

    #[test]
    fn xtra_lookup_prefers_host_then_manifest() {
        let src = r#"
            mov r1, r10
            sub r1, 8
            stb [r10-8], 107   ; 'k'
            mov r2, 1
            mov r3, r10
            sub r3, 16
            mov r4, 8
            call get_xtra
            jeq r0, -1, missing
            ldxb r0, [r10-16]
            exit
        missing:
            mov r0, 255
            exit
        "#;
        let prog = assemble_with_symbols(src, &crate::api::abi_symbols()).unwrap();
        let mut m = Manifest::new();
        m.push(ExtensionSpec::from_program(
            "xtra_reader",
            "g",
            InsertionPoint::BgpInboundFilter,
            &["get_xtra"],
            &prog,
        ));
        m.set_xtra("k", vec![9]);
        let mut vmm = Vmm::from_manifest(&m).unwrap();

        // Manifest data is visible...
        let mut host = MockHost::default();
        assert_eq!(vmm.run(InsertionPoint::BgpInboundFilter, &mut host), VmmOutcome::Value(9));
        // ...but host configuration shadows it.
        host.xtra.push(("k".into(), vec![3]));
        assert_eq!(vmm.run(InsertionPoint::BgpInboundFilter, &mut host), VmmOutcome::Value(3));
    }

    #[test]
    fn shared_memory_persists_within_a_group_and_is_isolated_across_groups() {
        // One extension stores a counter in shared memory; a second
        // extension of the same group increments it. A third extension in
        // a different group must not see the allocation.
        let writer = r"
            mov r1, 1          ; key
            mov r2, 8
            call ctx_shared_malloc
            jeq r0, 0, already
            stdw [r0], 100
            mov r0, 0
            exit
        already:
            mov r1, 1
            call ctx_shared_get
            ldxdw r2, [r0]
            add r2, 1
            stxdw [r0], r2
            mov r0, r2
            exit
        ";
        let probe = r"
            mov r1, 1
            call ctx_shared_get
            exit
        ";
        let w = spec(
            "writer",
            InsertionPoint::BgpInboundFilter,
            &["ctx_shared_malloc", "ctx_shared_get"],
            writer,
        );
        let probe_prog = assemble_with_symbols(probe, &crate::api::abi_symbols()).unwrap();
        let other = ExtensionSpec::from_program(
            "other_group_probe",
            "another_group",
            InsertionPoint::BgpOutboundFilter,
            &["ctx_shared_get"],
            &probe_prog,
        );
        let mut vmm = load(vec![w, other]);
        let mut host = MockHost::default();
        // First run allocates and stores 100.
        assert_eq!(vmm.run(InsertionPoint::BgpInboundFilter, &mut host), VmmOutcome::Value(0));
        // Second run sees the persisted value and increments it.
        assert_eq!(vmm.run(InsertionPoint::BgpInboundFilter, &mut host), VmmOutcome::Value(101));
        assert_eq!(vmm.run(InsertionPoint::BgpInboundFilter, &mut host), VmmOutcome::Value(102));
        // The other group's probe finds nothing under the same key.
        assert_eq!(vmm.run(InsertionPoint::BgpOutboundFilter, &mut host), VmmOutcome::Value(0));
    }

    #[test]
    fn ephemeral_heap_is_cleared_between_runs() {
        // Allocate, write a sentinel, return the previous content: always 0.
        let src = r"
            mov r1, 64
            call ctx_malloc
            ldxdw r6, [r0]     ; previous content
            lddw r2, 0xdeadbeefdeadbeef
            stxdw [r0], r2
            mov r0, r6
            exit
        ";
        let mut vmm =
            load(vec![spec("heap_probe", InsertionPoint::BgpInboundFilter, &["ctx_malloc"], src)]);
        let mut host = MockHost::default();
        for _ in 0..3 {
            assert_eq!(
                vmm.run(InsertionPoint::BgpInboundFilter, &mut host),
                VmmOutcome::Value(0),
                "ephemeral memory must be freed and zeroed after each run"
            );
        }
    }

    #[test]
    fn write_buf_and_print_reach_host() {
        let src = r#"
            stb [r10-4], 0xab
            stb [r10-3], 0xcd
            mov r1, r10
            sub r1, 4
            mov r2, 2
            call write_buf
            mov r1, r10
            sub r1, 4
            mov r2, 2
            call ebpf_print
            mov r0, 0
            exit
        "#;
        let mut vmm = load(vec![spec(
            "writer",
            InsertionPoint::BgpEncodeMessage,
            &["write_buf", "ebpf_print"],
            src,
        )]);
        let mut host = MockHost::default();
        assert_eq!(vmm.run(InsertionPoint::BgpEncodeMessage, &mut host), VmmOutcome::Value(0));
        assert_eq!(host.out_buf, vec![0xab, 0xcd]);
        assert_eq!(host.logs.len(), 1);
    }

    #[test]
    fn byte_order_helpers() {
        let src = r"
            mov r1, 0x11223344
            call bpf_htonl
            exit
        ";
        let mut vmm = load(vec![spec("swap", InsertionPoint::BgpDecision, &["bpf_htonl"], src)]);
        let mut host = MockHost::default();
        assert_eq!(
            vmm.run(InsertionPoint::BgpDecision, &mut host),
            VmmOutcome::Value(u64::from(0x1122_3344u32.swap_bytes()))
        );
    }

    #[test]
    fn rov_helper_consults_host() {
        let src = r"
            mov r1, 0x0a000000 ; 10.0.0.0
            mov r2, 8
            mov r3, 65001
            call rpki_check_origin
            exit
        ";
        let mut vmm =
            load(vec![spec("rov", InsertionPoint::BgpInboundFilter, &["rpki_check_origin"], src)]);
        let mut host = MockHost { rov_answer: api::ROV_INVALID, ..Default::default() };
        assert_eq!(
            vmm.run(InsertionPoint::BgpInboundFilter, &mut host),
            VmmOutcome::Value(api::ROV_INVALID)
        );
    }

    #[test]
    fn get_arg_copies_message_bytes() {
        let src = r"
            mov r1, 0          ; arg index
            call arg_len
            jeq r0, -1, fail
            mov r6, r0         ; length
            mov r1, 0
            mov r2, r10
            sub r2, 16
            mov r3, 16
            call get_arg
            jeq r0, -1, fail
            ldxb r0, [r10-16]  ; first byte of the message
            exit
        fail:
            mov r0, 255
            exit
        ";
        let mut vmm = load(vec![spec(
            "arg_reader",
            InsertionPoint::BgpReceiveMessage,
            &["get_arg", "arg_len"],
            src,
        )]);
        let mut host = MockHost::default();
        host.args.push(vec![0x42, 1, 2, 3]);
        assert_eq!(vmm.run(InsertionPoint::BgpReceiveMessage, &mut host), VmmOutcome::Value(0x42));
        // Without an argument the helpers report failure.
        host.args.clear();
        assert_eq!(vmm.run(InsertionPoint::BgpReceiveMessage, &mut host), VmmOutcome::Value(255));
    }

    #[test]
    fn prefix_helper_marshals_route_prefix() {
        let src = r"
            call get_prefix
            jeq r0, 0, missing
            ldxw r1, [r0+PREFIX_OFF_LEN]
            ldxw r0, [r0+PREFIX_OFF_ADDR]
            add r0, r1
            exit
        missing:
            mov r0, 0
            exit
        ";
        let mut vmm = load(vec![spec(
            "prefix_reader",
            InsertionPoint::BgpInboundFilter,
            &["get_prefix"],
            src,
        )]);
        let mut host = MockHost {
            prefix: Some("10.0.0.0/8".parse().unwrap()),
            ..Default::default()
        };
        assert_eq!(
            vmm.run(InsertionPoint::BgpInboundFilter, &mut host),
            VmmOutcome::Value(0x0a00_0000 + 8)
        );
    }

    #[test]
    fn rib_add_route_uses_hidden_context() {
        let src = r"
            mov r1, 0x0a010000
            mov r2, 16
            mov r3, 0x0a000001
            call rib_add_route
            exit
        ";
        let mut vmm = load(vec![spec(
            "installer",
            InsertionPoint::BgpReceiveMessage,
            &["rib_add_route"],
            src,
        )]);
        let mut host = MockHost::default();
        assert_eq!(vmm.run(InsertionPoint::BgpReceiveMessage, &mut host), VmmOutcome::Value(0));
        assert_eq!(host.rib, vec![("10.1.0.0/16".parse().unwrap(), 0x0a00_0001)]);
    }

    /// Stage `add_attr(66, ..)` and return a value, so the trace shows a
    /// full enter → helper → stage → commit → exit flow.
    const STAGE_THEN_VALUE: &str = r"
        mov r1, 66
        mov r2, ATTR_FLAGS_OPT_TRANS
        mov r3, r10
        sub r3, 8
        stdw [r10-8], 7
        mov r4, 8
        call add_attr
        mov r0, 1
        exit
    ";

    #[test]
    fn trace_records_the_point_helper_and_commit_flow() {
        use xbgp_obs::trace::pack_prefix;

        let mut vmm = load(vec![spec(
            "writer",
            InsertionPoint::BgpInboundFilter,
            &["add_attr"],
            STAGE_THEN_VALUE,
        )]);
        vmm.enable_trace(TraceConfig { sample_every: 1, capacity: 0, shard: 0 });
        let mut host = MockHost::default();

        let t = vmm.tracer_mut().expect("tracing enabled");
        t.set_now(50);
        let tid = t.on_ingest(9, 1);
        assert!(t.begin_route(pack_prefix(0x0a01_0000, 16)), "1-in-1 samples everything");
        assert_eq!(vmm.run(InsertionPoint::BgpInboundFilter, &mut host), VmmOutcome::Value(1));
        vmm.tracer_mut().unwrap().end_route();

        let dump = vmm.take_trace().expect("dump available");
        let kinds: Vec<TraceKind> = dump.events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                TraceKind::Ingest,
                TraceKind::Decode,
                TraceKind::PointEnter,
                TraceKind::HelperCall,
                TraceKind::TxnStage,
                TraceKind::TxnCommit,
                TraceKind::PointExit,
            ]
        );
        assert!(dump.events.iter().all(|e| e.trace_id == tid), "whole flow carries the scope id");
        let helper_ev = &dump.events[3];
        assert_eq!(helper_ev.a, u64::from(helper::ADD_ATTR));
        assert_eq!(dump.ext_names[usize::from(helper_ev.ext)], "writer");
        let stage = &dump.events[4];
        assert_eq!((stage.a, stage.b), (2, 66), "add op staged attribute 66");
        assert_eq!(dump.events[5].a, 1, "one staged op committed");
        assert_eq!(dump.events[6].a, 0, "value outcome");

        // The next route is unsampled under 1-in-2: nothing is recorded.
        let mut vmm2 = load(vec![spec(
            "writer",
            InsertionPoint::BgpInboundFilter,
            &["add_attr"],
            STAGE_THEN_VALUE,
        )]);
        vmm2.enable_trace(TraceConfig { sample_every: 2, capacity: 0, shard: 0 });
        let t = vmm2.tracer_mut().unwrap();
        t.on_ingest(9, 2);
        assert!(t.begin_route(1), "route 0 sampled");
        vmm2.run(InsertionPoint::BgpInboundFilter, &mut host);
        let before = vmm2.tracer_mut().unwrap().total_recorded();
        assert!(!vmm2.tracer_mut().unwrap().begin_route(2), "route 1 skipped");
        vmm2.run(InsertionPoint::BgpInboundFilter, &mut host);
        assert_eq!(
            vmm2.tracer_mut().unwrap().total_recorded(),
            before,
            "unsampled route recorded nothing"
        );
    }

    #[test]
    fn fault_postmortem_names_the_pc_and_insertion_point() {
        // The e2e contract for the flight recorder: quarantine an
        // extension and check the postmortem pins the faulting pc, the
        // insertion point, and the lead-up events.
        let mut vmm = load(vec![spec(
            "stage_then_trap",
            InsertionPoint::BgpInboundFilter,
            &["set_attr"],
            STAGE_THEN_TRAP,
        )]);
        vmm.enable_trace(TraceConfig { sample_every: 1, capacity: 0, shard: 3 });
        let mut host = MockHost::default();
        host.attrs.push((5, 0x40, 100u32.to_be_bytes().to_vec()));
        for i in 0..QUARANTINE_THRESHOLD {
            let t = vmm.tracer_mut().unwrap();
            t.set_now(u64::from(i) * 100);
            t.on_ingest(7, 1);
            t.begin_route(1);
            assert_eq!(vmm.run(InsertionPoint::BgpInboundFilter, &mut host), VmmOutcome::Fallback);
            vmm.tracer_mut().unwrap().end_route();
        }

        let dump = vmm.take_trace().expect("dump available");
        assert_eq!(dump.postmortems.len(), QUARANTINE_THRESHOLD as usize);
        let pm = dump.postmortems.last().unwrap();
        assert_eq!(pm.extension, "stage_then_trap");
        assert_eq!(pm.point, point_index(InsertionPoint::BgpInboundFilter) as u8);
        assert!(pm.quarantined, "final fault tripped the breaker");
        // STAGE_THEN_TRAP faults at the `ldxb` after two `set_attr` calls
        // and a two-slot `lddw`: original slot 15.
        assert_eq!(pm.pc, Some(15));
        assert!(pm.error.contains("memory fault"), "VmError display form: {}", pm.error);
        assert_ne!(pm.trace_id, 0, "fault happened inside a route scope");

        // The trailing events reconstruct the lead-up: the staged helper
        // calls, the rollback of the staged writes, and the fault itself.
        let kinds: Vec<TraceKind> = pm.events.iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&TraceKind::HelperCall));
        assert!(kinds.contains(&TraceKind::TxnRollback));
        assert!(kinds.contains(&TraceKind::Fault));
        assert!(kinds.contains(&TraceKind::Quarantine), "breaker event captured");
        assert!(pm.events.len() <= xbgp_obs::trace::POSTMORTEM_EVENTS);
        let fault_ev = pm.events.iter().find(|e| e.kind == TraceKind::Fault).unwrap();
        assert_eq!(fault_ev.a, 15, "fault event carries the pc");
        assert_eq!(fault_ev.b, 1, "MemFault error code");
        let rollback = pm.events.iter().find(|e| e.kind == TraceKind::TxnRollback).unwrap();
        assert_eq!(rollback.a, 1, "one staged op (set then restaged) was discarded");

        // Quarantine metrics still line up with the trace.
        let s = vmm.metrics_snapshot();
        assert_eq!(s.counter_value("xbgp_vmm_quarantines_total", &[]), Some(1));
    }

    /// A faulting counted-loop program with elidable stack traffic and a
    /// staged attribute write: toggling check elision must leave every
    /// observable — outcomes, staged host mutations, per-extension
    /// metrics — byte-identical on both engines (DESIGN.md §4i).
    #[test]
    fn check_elision_ablation_is_invisible_through_the_vmm() {
        const LOOP_STAGE_TRAP: &str = "\
        mov r6, 0
        mov r7, 8
loop:   stxdw [r10-8], r7
        ldxdw r1, [r10-8]
        add r6, r1
        add r7, -1
        jne r7, 0, loop
        mov r1, 99
        mov r2, ATTR_FLAGS_OPT_TRANS
        mov r3, r10
        sub r3, 8
        stxdw [r10-8], r6
        mov r4, 8
        call set_attr
        jne r6, 36, done
        lddw r1, 0x999999999
        ldxb r0, [r1]
done:   mov r0, r6
        exit";
        let make = || {
            load(vec![spec(
                "abl",
                InsertionPoint::BgpInboundFilter,
                &["set_attr"],
                LOOP_STAGE_TRAP,
            )])
        };
        for engine in [Engine::Interp, Engine::Compiled] {
            let mut on = make();
            let mut off = make();
            on.set_engine(engine);
            off.set_engine(engine);
            off.set_check_elision(false);
            on.enable_metrics();
            off.enable_metrics();
            let mut host_on = MockHost::default();
            let mut host_off = MockHost::default();
            for _ in 0..5 {
                let a = on.run(InsertionPoint::BgpInboundFilter, &mut host_on);
                let b = off.run(InsertionPoint::BgpInboundFilter, &mut host_off);
                assert_eq!(a, b, "outcome diverged under {engine:?}");
            }
            // The sum 8+7+..+1 = 36 trips the trap, so the staged write is
            // rolled back every run: the host must have seen nothing.
            assert_eq!(host_on.attrs, host_off.attrs);
            assert!(host_on.attrs.is_empty(), "rollback erased the staged attr");
            assert_eq!(on.stats(), off.stats(), "metrics diverged under {engine:?}");
            assert!(on.stats()[0].insns_retired > 0, "metrics were actually recorded");
        }
    }

    #[test]
    fn profiler_exports_fuel_and_helper_series() {
        let mut vmm = load(vec![spec(
            "writer",
            InsertionPoint::BgpInboundFilter,
            &["add_attr"],
            STAGE_THEN_VALUE,
        )]);
        vmm.enable_profile();
        assert!(vmm.profile_enabled());
        let mut host = MockHost::default();
        for _ in 0..4 {
            assert_eq!(vmm.run(InsertionPoint::BgpInboundFilter, &mut host), VmmOutcome::Value(1));
        }
        let s = vmm.metrics_snapshot();
        assert_eq!(
            s.counter_value("xbgp_prof_helper_calls_total", &[("helper", "add_attr")]),
            Some(4)
        );
        assert!(
            s.counter_value("xbgp_prof_helper_ns_total", &[("helper", "add_attr")])
                .is_some(),
            "latency attributed per helper"
        );
        let fuel = s
            .histogram_value("xbgp_prof_fuel", &[("extension", "writer")])
            .expect("per-extension fuel histogram");
        assert_eq!(fuel.count, 4);
        // STAGE_THEN_VALUE retires 9 instructions per run.
        assert_eq!(fuel.sum, 4 * 9);
        let inbound = [("point", "bgp_inbound_filter")];
        assert!(s.counter_value("xbgp_prof_point_helper_ns_total", &inbound).is_some());
        assert!(s.counter_value("xbgp_prof_point_vm_ns_total", &inbound).is_some());

        // Profiling off: no xbgp_prof_* series in the snapshot.
        let vmm = load(vec![spec("w", InsertionPoint::BgpInboundFilter, &[], "mov r0, 1\nexit")]);
        assert!(vmm
            .metrics_snapshot()
            .counter_value("xbgp_prof_helper_calls_total", &[])
            .is_none());
    }
}
