//! Helper contracts for the proof-carrying verifier.
//!
//! The VM-level abstract interpreter ([`xbgp_vm::absint`]) is
//! host-agnostic: it only knows what a helper returns if the host tells
//! it. This module is that telling — one [`HelperContract`] per xBGP API
//! helper, resolved per insertion point, so `verify_and_load_with` can:
//!
//! * track pointer provenance through `get_peer_info`/`ctx_malloc`-style
//!   returns and prove the subsequent field loads in-bounds,
//! * model the `get_attr` family's `len | XBGP_FAIL` return shape,
//! * reject at *load time* calls that are illegal at the insertion point
//!   (`write_buf` outside `bgp_encode_message`, §2.2's per-point API
//!   surface) or that pass a provably-bad pointer argument.
//!
//! Helpers absent from the table fall open in the analyzer (unknown
//! scalar return, no constraints) — new helpers degrade verification
//! precision, never soundness.

use std::collections::BTreeMap;

use xbgp_vm::{AnalysisOptions, HelperContract, HelperRet, MemKind};

use crate::api::{helper, InsertionPoint, NEXTHOP_INFO_SIZE, PEER_INFO_SIZE, PREFIX_INFO_SIZE};

fn scalar() -> HelperContract {
    HelperContract { allowed: true, ptr_args: Vec::new(), ret: HelperRet::Scalar }
}

fn scalar_ptr_args(ptr_args: &[u8]) -> HelperContract {
    HelperContract {
        allowed: true,
        ptr_args: ptr_args.to_vec(),
        ret: HelperRet::Scalar,
    }
}

fn len_or_fail(dst_arg: u8, cap_arg: u8) -> HelperContract {
    HelperContract {
        allowed: true,
        ptr_args: vec![dst_arg],
        ret: HelperRet::LenOrFail { cap_arg },
    }
}

fn zero_or_ptr(kind: MemKind, size: Option<u64>) -> HelperContract {
    HelperContract {
        allowed: true,
        ptr_args: Vec::new(),
        ret: HelperRet::ZeroOrPtr { kind, size },
    }
}

/// The analyzer configuration for one insertion point: the full helper
/// table, with per-point availability applied.
pub fn analysis_options(point: InsertionPoint) -> AnalysisOptions {
    let mut contracts: BTreeMap<u32, HelperContract> = BTreeMap::new();
    contracts.insert(helper::NEXT, scalar());
    // get_arg(idx, dst, cap) / get_attr(code, dst, cap): dst (arg 1) is a
    // pointer, the return is a length bounded by cap (arg 2) or XBGP_FAIL.
    contracts.insert(helper::GET_ARG, len_or_fail(1, 2));
    contracts.insert(helper::ARG_LEN, scalar());
    contracts
        .insert(helper::GET_PEER_INFO, zero_or_ptr(MemKind::Heap, Some(PEER_INFO_SIZE as u64)));
    contracts
        .insert(helper::GET_NEXTHOP, zero_or_ptr(MemKind::Heap, Some(NEXTHOP_INFO_SIZE as u64)));
    contracts.insert(helper::GET_ATTR, len_or_fail(1, 2));
    // set_attr(code, flags, ptr, len) / add_attr: ptr is arg 2.
    contracts.insert(helper::SET_ATTR, scalar_ptr_args(&[2]));
    contracts.insert(helper::ADD_ATTR, scalar_ptr_args(&[2]));
    contracts.insert(helper::REMOVE_ATTR, scalar());
    // get_xtra(key_ptr, key_len, dst, cap): two pointer args, length-or-fail
    // return capped by arg 3.
    contracts.insert(
        helper::GET_XTRA,
        HelperContract {
            allowed: true,
            ptr_args: vec![0, 2],
            ret: HelperRet::LenOrFail { cap_arg: 3 },
        },
    );
    // write_buf(ptr, len): the output buffer only exists while encoding a
    // message, so any other insertion point rejects the call at load time.
    contracts.insert(
        helper::WRITE_BUF,
        HelperContract {
            allowed: point == InsertionPoint::BgpEncodeMessage,
            ptr_args: vec![0],
            ret: HelperRet::Scalar,
        },
    );
    contracts.insert(helper::EBPF_MEMCPY, scalar_ptr_args(&[0, 1]));
    contracts.insert(helper::BPF_HTONL, scalar());
    contracts.insert(helper::BPF_NTOHL, scalar());
    contracts.insert(helper::BPF_HTONS, scalar());
    contracts.insert(helper::BPF_NTOHS, scalar());
    contracts.insert(helper::EBPF_PRINT, scalar_ptr_args(&[0]));
    // ctx_malloc(size): null or a heap pointer with at least `size` (arg 0)
    // valid bytes.
    contracts.insert(
        helper::CTX_MALLOC,
        HelperContract {
            allowed: true,
            ptr_args: Vec::new(),
            ret: HelperRet::ZeroOrPtrSizedByArg { kind: MemKind::Heap, size_arg: 0 },
        },
    );
    // ctx_shared_malloc(key, size): size is arg 1, region is the shared heap.
    contracts.insert(
        helper::CTX_SHARED_MALLOC,
        HelperContract {
            allowed: true,
            ptr_args: Vec::new(),
            ret: HelperRet::ZeroOrPtrSizedByArg { kind: MemKind::Shared, size_arg: 1 },
        },
    );
    // ctx_shared_get(key): the allocation size is keyed state the verifier
    // cannot see, so provenance is tracked but no window is provable.
    contracts.insert(helper::CTX_SHARED_GET, zero_or_ptr(MemKind::Shared, None));
    contracts.insert(helper::RPKI_CHECK_ORIGIN, scalar());
    contracts.insert(helper::RIB_ADD_ROUTE, scalar());
    contracts.insert(helper::GET_PREFIX, zero_or_ptr(MemKind::Heap, Some(PREFIX_INFO_SIZE as u64)));
    AnalysisOptions { contracts }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_api_helper_has_a_contract() {
        let opts = analysis_options(InsertionPoint::BgpDecision);
        for (name, id) in helper::TABLE {
            assert!(opts.contracts.contains_key(id), "no contract for helper `{name}`");
        }
    }

    #[test]
    fn write_buf_gated_to_encode_point() {
        for point in InsertionPoint::ALL {
            let opts = analysis_options(point);
            let allowed = opts.contracts[&helper::WRITE_BUF].allowed;
            assert_eq!(allowed, point == InsertionPoint::BgpEncodeMessage, "{point:?}");
        }
    }

    #[test]
    fn marshalled_struct_windows_match_api_sizes() {
        let opts = analysis_options(InsertionPoint::BgpDecision);
        let size_of = |id: u32| match opts.contracts[&id].ret {
            HelperRet::ZeroOrPtr { size, .. } => size,
            _ => panic!("expected ZeroOrPtr"),
        };
        assert_eq!(size_of(helper::GET_PEER_INFO), Some(PEER_INFO_SIZE as u64));
        assert_eq!(size_of(helper::GET_NEXTHOP), Some(NEXTHOP_INFO_SIZE as u64));
        assert_eq!(size_of(helper::GET_PREFIX), Some(PREFIX_INFO_SIZE as u64));
    }
}
