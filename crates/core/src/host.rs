//! The host-side contract: what a BGP implementation must expose.
//!
//! `HostApi` is the boundary between libxbgp and a concrete BGP daemon.
//! Its methods correspond one-to-one with the host-touching helpers of the
//! xBGP API; the VMM translates VM-side helper calls (ids, registers,
//! sandboxed memory) into these calls. Attribute payloads cross this
//! boundary **in network byte order** — the neutral representation — and
//! each host converts to and from its internal storage format, exactly as
//! the paper describes for FRRouting (host-order structs, conversion
//! needed) and BIRD (wire-order `ea_list`, nearly free).
//!
//! A `HostApi` value represents one *execution context* (§2.1): it is
//! scoped to a single insertion-point invocation and carries hidden host
//! state (current route, current peer, output buffer) that extension code
//! can only reach through helpers.

use crate::api::{NextHopInfo, PeerInfo};
use xbgp_wire::Ipv4Prefix;

/// Host callbacks backing the xBGP helpers for one insertion-point call.
pub trait HostApi {
    /// Information about the peer the current message/route concerns.
    fn peer_info(&self) -> PeerInfo;

    /// Nexthop of the current route, if one is in scope.
    fn nexthop_info(&self) -> Option<NextHopInfo> {
        None
    }

    /// Prefix of the current route, if one is in scope.
    fn prefix(&self) -> Option<Ipv4Prefix> {
        None
    }

    /// Insertion-point argument `idx` (e.g. 0 = raw UPDATE body at the
    /// receive-message point), as raw network-byte-order bytes.
    fn arg(&self, _idx: u32) -> Option<&[u8]> {
        None
    }

    /// Read attribute `code` of the current route: `(flags, payload)` in
    /// network byte order.
    fn get_attr(&self, _code: u8) -> Option<(u8, Vec<u8>)> {
        None
    }

    /// Allocation-free variant of [`HostApi::get_attr`]: append the payload
    /// of attribute `code` to `out` and return its flags. The VMM calls
    /// this on the helper hot path with a reused scratch buffer; hosts
    /// should override it to copy straight from their internal storage.
    fn get_attr_into(&self, code: u8, out: &mut Vec<u8>) -> Option<u8> {
        let (flags, payload) = self.get_attr(code)?;
        out.extend_from_slice(&payload);
        Some(flags)
    }

    /// Does the current route carry attribute `code`? Used by `add_attr`
    /// to test existence without marshalling the payload.
    fn has_attr(&self, code: u8) -> bool {
        self.get_attr(code).is_some()
    }

    /// Insert or replace attribute `code` on the current route.
    fn set_attr(&mut self, _code: u8, _flags: u8, _value: &[u8]) -> Result<(), String> {
        Err("set_attr not available at this insertion point".into())
    }

    /// Remove attribute `code` from the current route.
    fn remove_attr(&mut self, _code: u8) -> Result<(), String> {
        Err("remove_attr not available at this insertion point".into())
    }

    /// Static configuration / manifest data (router coordinates, AS-pair
    /// tables, …) looked up by key.
    fn get_xtra(&self, _key: &str) -> Option<Vec<u8>> {
        None
    }

    /// Append bytes to the host output buffer (encode-message point).
    fn write_buf(&mut self, _data: &[u8]) -> Result<(), String> {
        Err("write_buf not available at this insertion point".into())
    }

    /// RFC 6811 origin validation against the host's ROA table.
    /// Returns `ROV_NOT_FOUND` / `ROV_VALID` / `ROV_INVALID`.
    fn check_origin(&self, _prefix: Ipv4Prefix, _origin_asn: u32) -> u64 {
        crate::api::ROV_NOT_FOUND
    }

    /// Install a route into the RIB (uses hidden context arguments; see
    /// §2.1 "the RIB function leverages such hidden arguments").
    fn rib_add_route(&mut self, _prefix: Ipv4Prefix, _nexthop: u32) -> Result<(), String> {
        Err("rib_add_route not available at this insertion point".into())
    }

    /// Debug output from `ebpf_print`.
    fn log(&mut self, _msg: &str) {}
}

/// A configurable mock host used by unit tests in this crate and by the
/// extension-program tests in `xbgp-progs`.
#[derive(Debug, Clone)]
pub struct MockHost {
    pub peer: PeerInfo,
    pub nexthop: Option<NextHopInfo>,
    pub prefix: Option<Ipv4Prefix>,
    pub args: Vec<Vec<u8>>,
    /// `(code, flags, payload)` triples, mutated by set/add/remove.
    pub attrs: Vec<(u8, u8, Vec<u8>)>,
    pub xtra: Vec<(String, Vec<u8>)>,
    pub out_buf: Vec<u8>,
    pub logs: Vec<String>,
    /// Fixed answer for `check_origin`.
    pub rov_answer: u64,
    pub rib: Vec<(Ipv4Prefix, u32)>,
}

impl Default for MockHost {
    fn default() -> Self {
        MockHost {
            peer: PeerInfo {
                router_id: 0x0a00_0001,
                asn: 65001,
                peer_type: crate::api::PeerType::Ebgp,
                local_router_id: 0x0a00_0002,
                local_asn: 65000,
                flags: 0,
            },
            nexthop: None,
            prefix: None,
            args: Vec::new(),
            attrs: Vec::new(),
            xtra: Vec::new(),
            out_buf: Vec::new(),
            logs: Vec::new(),
            rov_answer: crate::api::ROV_NOT_FOUND,
            rib: Vec::new(),
        }
    }
}

impl HostApi for MockHost {
    fn peer_info(&self) -> PeerInfo {
        self.peer
    }

    fn nexthop_info(&self) -> Option<NextHopInfo> {
        self.nexthop
    }

    fn prefix(&self) -> Option<Ipv4Prefix> {
        self.prefix
    }

    fn arg(&self, idx: u32) -> Option<&[u8]> {
        self.args.get(idx as usize).map(Vec::as_slice)
    }

    fn get_attr(&self, code: u8) -> Option<(u8, Vec<u8>)> {
        self.attrs.iter().find(|(c, _, _)| *c == code).map(|(_, f, v)| (*f, v.clone()))
    }

    fn get_attr_into(&self, code: u8, out: &mut Vec<u8>) -> Option<u8> {
        let (_, flags, payload) = self.attrs.iter().find(|(c, _, _)| *c == code)?;
        out.extend_from_slice(payload);
        Some(*flags)
    }

    fn has_attr(&self, code: u8) -> bool {
        self.attrs.iter().any(|(c, _, _)| *c == code)
    }

    fn set_attr(&mut self, code: u8, flags: u8, value: &[u8]) -> Result<(), String> {
        match self.attrs.iter_mut().find(|(c, _, _)| *c == code) {
            Some(slot) => {
                slot.1 = flags;
                slot.2 = value.to_vec();
            }
            None => self.attrs.push((code, flags, value.to_vec())),
        }
        Ok(())
    }

    fn remove_attr(&mut self, code: u8) -> Result<(), String> {
        let before = self.attrs.len();
        self.attrs.retain(|(c, _, _)| *c != code);
        if self.attrs.len() == before {
            Err(format!("attribute {code} not present"))
        } else {
            Ok(())
        }
    }

    fn get_xtra(&self, key: &str) -> Option<Vec<u8>> {
        self.xtra.iter().find(|(k, _)| k == key).map(|(_, v)| v.clone())
    }

    fn write_buf(&mut self, data: &[u8]) -> Result<(), String> {
        self.out_buf.extend_from_slice(data);
        Ok(())
    }

    fn check_origin(&self, _prefix: Ipv4Prefix, _origin_asn: u32) -> u64 {
        self.rov_answer
    }

    fn rib_add_route(&mut self, prefix: Ipv4Prefix, nexthop: u32) -> Result<(), String> {
        self.rib.push((prefix, nexthop));
        Ok(())
    }

    fn log(&mut self, msg: &str) {
        self.logs.push(msg.to_string());
    }
}
