//! The host-side contract: what a BGP implementation must expose.
//!
//! `HostApi` is the boundary between libxbgp and a concrete BGP daemon.
//! Its methods correspond one-to-one with the host-touching helpers of the
//! xBGP API; the VMM translates VM-side helper calls (ids, registers,
//! sandboxed memory) into these calls. Attribute payloads cross this
//! boundary **in network byte order** — the neutral representation — and
//! each host converts to and from its internal storage format, exactly as
//! the paper describes for FRRouting (host-order structs, conversion
//! needed) and BIRD (wire-order `ea_list`, nearly free).
//!
//! A `HostApi` value represents one *execution context* (§2.1): it is
//! scoped to a single insertion-point invocation and carries hidden host
//! state (current route, current peer, output buffer) that extension code
//! can only reach through helpers.
//!
//! ## The transactional contract
//!
//! Mutations are **staged, not applied**. The VMM buffers every
//! `set_attr`/`remove_attr`/`write_buf`/`rib_add_route` an extension chain
//! performs and replays them against the host only when the chain finishes
//! cleanly (DESIGN.md §4d). Two consequences for implementors:
//!
//! * [`HostApi::check_op`] must *validate without mutating* — it is called
//!   at stage time so a doomed mutation faults at the helper call site
//!   with an accurate pc, and so the commit below cannot fail in practice.
//! * The mutating methods are only invoked at commit time, after every
//!   staged operation passed `check_op`. A commit-time error is a host
//!   bug, not an extension condition; the VMM logs and counts it.
//!
//! All fallible methods return the typed [`HostError`] — never a bare
//! `String` — so the VMM can distinguish *recoverable* conditions (the
//! helper reports `XBGP_FAIL` and the extension decides) from *contract
//! violations* (the run faults, staged state rolls back, and the host's
//! native behaviour takes over).

use crate::api::{NextHopInfo, PeerInfo};
use std::fmt;
use xbgp_wire::Ipv4Prefix;

/// Typed failure of a host-side operation.
///
/// Variants split into two severities (see [`HostError::recoverable`]):
/// recoverable errors surface to the extension as `XBGP_FAIL` from the
/// helper, exactly like a missing attribute always has; contract
/// violations become [`xbgp_vm::VmError::HelperFault`] and abort the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HostError {
    /// The named mutation is not available at this insertion point
    /// (e.g. `set_attr` while the route is read-only).
    ReadOnlyPoint { op: &'static str },
    /// `remove_attr` on an attribute the current route does not carry.
    AttrNotPresent { code: u8 },
    /// The host refuses to drop a mandatory attribute (ORIGIN, AS_PATH,
    /// NEXT_HOP).
    MandatoryAttr { code: u8 },
    /// The payload is malformed for this attribute code (wrong length,
    /// unparsable contents).
    BadAttrValue { code: u8, reason: String },
    /// `write_buf` outside the encode-message point.
    NoOutputBuffer,
    /// `rib_add_route` is not wired up in this execution context.
    RibUnavailable,
}

impl HostError {
    /// `true` when the condition is something extension code can test and
    /// handle: the helper returns `XBGP_FAIL` and execution continues.
    /// `false` means the extension violated the execution contract (wrote
    /// where the point is read-only, used a buffer that does not exist):
    /// the run faults, staged mutations roll back, and the host falls
    /// through to its native behaviour.
    pub fn recoverable(&self) -> bool {
        match self {
            HostError::AttrNotPresent { .. }
            | HostError::MandatoryAttr { .. }
            | HostError::BadAttrValue { .. } => true,
            HostError::ReadOnlyPoint { .. }
            | HostError::NoOutputBuffer
            | HostError::RibUnavailable => false,
        }
    }
}

impl fmt::Display for HostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HostError::ReadOnlyPoint { op } => {
                write!(f, "{op}: attributes are read-only at this insertion point")
            }
            HostError::AttrNotPresent { code } => write!(f, "attribute {code} not present"),
            HostError::MandatoryAttr { code } => write!(f, "attribute {code} is mandatory"),
            HostError::BadAttrValue { code, reason } => {
                write!(f, "attribute {code}: {reason}")
            }
            HostError::NoOutputBuffer => {
                write!(f, "no output buffer at this insertion point")
            }
            HostError::RibUnavailable => {
                write!(f, "rib_add_route not available in this context")
            }
        }
    }
}

/// A host mutation the VMM is about to stage. Passed to
/// [`HostApi::check_op`] for validation *before* the operation enters the
/// transaction buffer.
#[derive(Debug, Clone, Copy)]
pub enum HostOp<'a> {
    SetAttr {
        code: u8,
        flags: u8,
        value: &'a [u8],
    },
    RemoveAttr {
        code: u8,
    },
    WriteBuf {
        len: usize,
    },
    RibAddRoute {
        prefix: Ipv4Prefix,
        nexthop: u32,
    },
}

/// Host callbacks backing the xBGP helpers for one insertion-point call.
pub trait HostApi {
    /// Information about the peer the current message/route concerns.
    fn peer_info(&self) -> PeerInfo;

    /// Nexthop of the current route, if one is in scope.
    fn nexthop_info(&self) -> Option<NextHopInfo> {
        None
    }

    /// Prefix of the current route, if one is in scope.
    fn prefix(&self) -> Option<Ipv4Prefix> {
        None
    }

    /// Insertion-point argument `idx` (e.g. 0 = raw UPDATE body at the
    /// receive-message point), as raw network-byte-order bytes.
    fn arg(&self, _idx: u32) -> Option<&[u8]> {
        None
    }

    /// Append the payload of attribute `code` to `out` and return its
    /// flags, or `None` if the route does not carry it. This is the one
    /// attribute-read method hosts implement: the VMM calls it on the
    /// helper hot path with a reused scratch buffer, so it should copy
    /// straight from internal storage without intermediate allocation.
    fn get_attr_into(&self, code: u8, out: &mut Vec<u8>) -> Option<u8>;

    /// Allocating convenience wrapper over [`HostApi::get_attr_into`]:
    /// `(flags, payload)` in network byte order.
    fn get_attr(&self, code: u8) -> Option<(u8, Vec<u8>)> {
        let mut out = Vec::new();
        let flags = self.get_attr_into(code, &mut out)?;
        Some((flags, out))
    }

    /// Does the current route carry attribute `code`? Used by `add_attr`
    /// to test existence without marshalling the payload. Hosts should
    /// override this with a payload-free lookup.
    fn has_attr(&self, code: u8) -> bool {
        self.get_attr_into(code, &mut Vec::new()).is_some()
    }

    /// Validate a mutation the VMM wants to stage, without applying it.
    /// `Ok(())` promises the same operation will succeed at commit time.
    /// The default rejects everything, matching the default mutators.
    fn check_op(&self, op: &HostOp<'_>) -> Result<(), HostError> {
        match op {
            HostOp::SetAttr { .. } => Err(HostError::ReadOnlyPoint { op: "set_attr" }),
            HostOp::RemoveAttr { .. } => Err(HostError::ReadOnlyPoint { op: "remove_attr" }),
            HostOp::WriteBuf { .. } => Err(HostError::NoOutputBuffer),
            HostOp::RibAddRoute { .. } => Err(HostError::RibUnavailable),
        }
    }

    /// Insert or replace attribute `code` on the current route.
    /// Commit-time only; stage-time validation goes through
    /// [`HostApi::check_op`].
    fn set_attr(&mut self, _code: u8, _flags: u8, _value: &[u8]) -> Result<(), HostError> {
        Err(HostError::ReadOnlyPoint { op: "set_attr" })
    }

    /// Remove attribute `code` from the current route. Commit-time only.
    fn remove_attr(&mut self, _code: u8) -> Result<(), HostError> {
        Err(HostError::ReadOnlyPoint { op: "remove_attr" })
    }

    /// Static configuration / manifest data (router coordinates, AS-pair
    /// tables, …) looked up by key.
    fn get_xtra(&self, _key: &str) -> Option<Vec<u8>> {
        None
    }

    /// Append bytes to the host output buffer (encode-message point).
    /// Commit-time only.
    fn write_buf(&mut self, _data: &[u8]) -> Result<(), HostError> {
        Err(HostError::NoOutputBuffer)
    }

    /// RFC 6811 origin validation against the host's ROA table.
    /// Returns `ROV_NOT_FOUND` / `ROV_VALID` / `ROV_INVALID`.
    fn check_origin(&self, _prefix: Ipv4Prefix, _origin_asn: u32) -> u64 {
        crate::api::ROV_NOT_FOUND
    }

    /// Install a route into the RIB (uses hidden context arguments; see
    /// §2.1 "the RIB function leverages such hidden arguments").
    /// Commit-time only.
    fn rib_add_route(&mut self, _prefix: Ipv4Prefix, _nexthop: u32) -> Result<(), HostError> {
        Err(HostError::RibUnavailable)
    }

    /// Debug output from `ebpf_print`. Not staged: log lines are
    /// diagnostics and survive a rollback on purpose.
    fn log(&mut self, _msg: &str) {}
}

/// A configurable mock host used by unit tests in this crate and by the
/// extension-program tests in `xbgp-progs`.
#[derive(Debug, Clone)]
pub struct MockHost {
    pub peer: PeerInfo,
    pub nexthop: Option<NextHopInfo>,
    pub prefix: Option<Ipv4Prefix>,
    pub args: Vec<Vec<u8>>,
    /// `(code, flags, payload)` triples, mutated by set/add/remove.
    pub attrs: Vec<(u8, u8, Vec<u8>)>,
    /// Attribute codes this host refuses to mutate: `set_attr` /
    /// `remove_attr` on them fail with [`HostError::ReadOnlyPoint`],
    /// letting tests exercise the contract-violation path.
    pub deny_attrs: Vec<u8>,
    pub xtra: Vec<(String, Vec<u8>)>,
    pub out_buf: Vec<u8>,
    pub logs: Vec<String>,
    /// Fixed answer for `check_origin`.
    pub rov_answer: u64,
    pub rib: Vec<(Ipv4Prefix, u32)>,
}

impl Default for MockHost {
    fn default() -> Self {
        MockHost {
            peer: PeerInfo {
                router_id: 0x0a00_0001,
                asn: 65001,
                peer_type: crate::api::PeerType::Ebgp,
                local_router_id: 0x0a00_0002,
                local_asn: 65000,
                flags: 0,
            },
            nexthop: None,
            prefix: None,
            args: Vec::new(),
            attrs: Vec::new(),
            deny_attrs: Vec::new(),
            xtra: Vec::new(),
            out_buf: Vec::new(),
            logs: Vec::new(),
            rov_answer: crate::api::ROV_NOT_FOUND,
            rib: Vec::new(),
        }
    }
}

impl HostApi for MockHost {
    fn peer_info(&self) -> PeerInfo {
        self.peer
    }

    fn nexthop_info(&self) -> Option<NextHopInfo> {
        self.nexthop
    }

    fn prefix(&self) -> Option<Ipv4Prefix> {
        self.prefix
    }

    fn arg(&self, idx: u32) -> Option<&[u8]> {
        self.args.get(idx as usize).map(Vec::as_slice)
    }

    fn get_attr_into(&self, code: u8, out: &mut Vec<u8>) -> Option<u8> {
        let (_, flags, payload) = self.attrs.iter().find(|(c, _, _)| *c == code)?;
        out.extend_from_slice(payload);
        Some(*flags)
    }

    fn has_attr(&self, code: u8) -> bool {
        self.attrs.iter().any(|(c, _, _)| *c == code)
    }

    fn check_op(&self, op: &HostOp<'_>) -> Result<(), HostError> {
        match op {
            HostOp::SetAttr { code, .. } if self.deny_attrs.contains(code) => {
                Err(HostError::ReadOnlyPoint { op: "set_attr" })
            }
            HostOp::RemoveAttr { code } if self.deny_attrs.contains(code) => {
                Err(HostError::ReadOnlyPoint { op: "remove_attr" })
            }
            _ => Ok(()),
        }
    }

    fn set_attr(&mut self, code: u8, flags: u8, value: &[u8]) -> Result<(), HostError> {
        if self.deny_attrs.contains(&code) {
            return Err(HostError::ReadOnlyPoint { op: "set_attr" });
        }
        match self.attrs.iter_mut().find(|(c, _, _)| *c == code) {
            Some(slot) => {
                slot.1 = flags;
                slot.2 = value.to_vec();
            }
            None => self.attrs.push((code, flags, value.to_vec())),
        }
        Ok(())
    }

    fn remove_attr(&mut self, code: u8) -> Result<(), HostError> {
        if self.deny_attrs.contains(&code) {
            return Err(HostError::ReadOnlyPoint { op: "remove_attr" });
        }
        let before = self.attrs.len();
        self.attrs.retain(|(c, _, _)| *c != code);
        if self.attrs.len() == before {
            Err(HostError::AttrNotPresent { code })
        } else {
            Ok(())
        }
    }

    fn get_xtra(&self, key: &str) -> Option<Vec<u8>> {
        self.xtra.iter().find(|(k, _)| k == key).map(|(_, v)| v.clone())
    }

    fn write_buf(&mut self, data: &[u8]) -> Result<(), HostError> {
        self.out_buf.extend_from_slice(data);
        Ok(())
    }

    fn check_origin(&self, _prefix: Ipv4Prefix, _origin_asn: u32) -> u64 {
        self.rov_answer
    }

    fn rib_add_route(&mut self, prefix: Ipv4Prefix, nexthop: u32) -> Result<(), HostError> {
        self.rib.push((prefix, nexthop));
        Ok(())
    }

    fn log(&mut self, msg: &str) {
        self.logs.push(msg.to_string());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remove_attr_maps_absence_to_attr_not_present() {
        let mut host = MockHost::default();
        assert_eq!(host.remove_attr(42), Err(HostError::AttrNotPresent { code: 42 }));
        host.attrs.push((42, 0xc0, vec![1]));
        assert_eq!(host.remove_attr(42), Ok(()));
        assert!(host.attrs.is_empty());
    }

    #[test]
    fn deny_attrs_turns_mutations_into_read_only_faults() {
        let mut host = MockHost { deny_attrs: vec![5], ..MockHost::default() };
        host.attrs.push((5, 0x40, vec![0, 0, 0, 100]));
        let err = host.set_attr(5, 0x40, &[0, 0, 0, 200]).unwrap_err();
        assert_eq!(err, HostError::ReadOnlyPoint { op: "set_attr" });
        assert!(!err.recoverable(), "read-only writes violate the contract");
        assert!(host.check_op(&HostOp::SetAttr { code: 5, flags: 0x40, value: &[] }).is_err());
        assert!(host.check_op(&HostOp::SetAttr { code: 6, flags: 0x40, value: &[] }).is_ok());
        // The stored value is untouched.
        assert_eq!(host.attrs[0].2, vec![0, 0, 0, 100]);
    }

    #[test]
    fn error_severity_classification() {
        assert!(HostError::AttrNotPresent { code: 1 }.recoverable());
        assert!(HostError::MandatoryAttr { code: 2 }.recoverable());
        assert!(HostError::BadAttrValue { code: 4, reason: "short".into() }.recoverable());
        assert!(!HostError::ReadOnlyPoint { op: "set_attr" }.recoverable());
        assert!(!HostError::NoOutputBuffer.recoverable());
        assert!(!HostError::RibUnavailable.recoverable());
    }

    #[test]
    fn get_attr_is_a_wrapper_over_get_attr_into() {
        let mut host = MockHost::default();
        host.attrs.push((5, 0x40, vec![0, 0, 0, 100]));
        assert_eq!(host.get_attr(5), Some((0x40, vec![0, 0, 0, 100])));
        assert_eq!(host.get_attr(6), None);
    }
}
