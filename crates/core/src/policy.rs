//! Per-invocation execution policy: what one extension run may consume
//! and what happens when it faults.
//!
//! The policy is the operator-facing half of the execution contract
//! (DESIGN.md §4d). Each manifest entry may carry a `fuel` budget and an
//! `on_fault` disposition; the VMM assembles them — falling back to its
//! global defaults — into one [`ExecPolicy`] per run.

/// What the VMM does when an extension faults (trap, fuel exhaustion, or
/// a non-recoverable host error).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OnFault {
    /// Roll back staged mutations and fall through to the host's native
    /// behaviour — the paper's default: a broken extension degrades to
    /// stock BGP, never to a broken router.
    #[default]
    Fallback,
    /// Roll back staged mutations and tell the host to *fail closed*:
    /// filter points reject the route, other points keep native
    /// behaviour. For extensions whose absence must not silently widen
    /// policy (e.g. a security filter).
    Abort,
}

impl OnFault {
    /// Manifest/JSON spelling of this disposition.
    pub fn as_str(self) -> &'static str {
        match self {
            OnFault::Fallback => "fallback",
            OnFault::Abort => "abort",
        }
    }

    /// Parse the manifest spelling.
    pub fn parse(s: &str) -> Result<OnFault, String> {
        match s {
            "fallback" => Ok(OnFault::Fallback),
            "abort" => Ok(OnFault::Abort),
            other => Err(format!("unknown on_fault `{other}` (expected `fallback` or `abort`)")),
        }
    }
}

/// Resource and fault policy for one extension invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecPolicy {
    /// Instruction budget. The interpreter charges one unit per
    /// instruction and checks the balance at back-edges and helper
    /// calls, so straight-line code cannot be stopped mid-basic-block
    /// but no loop can outrun its budget by more than one block.
    pub fuel: u64,
    /// Upper bound, in bytes, on what `ebpf_memory_alloc` may hand out
    /// across one run (clamped to the arena's heap size).
    pub mem_cap: usize,
    /// Disposition when this extension faults.
    pub on_fault: OnFault,
}
