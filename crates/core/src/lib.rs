//! # xbgp-core — libxbgp: the vendor-neutral xBGP layer
//!
//! This crate is the reproduction of the paper's primary contribution. It
//! contains the three core elements of xBGP (§2):
//!
//! 1. **The xBGP API** ([`api`]): a set of helper functions exposing the key
//!    features and data structures that any BGP implementation maintains
//!    (RFC 4271's Adj-RIB-In, Loc-RIB, Adj-RIB-Out, peer table, attributes),
//!    plus the neutral ABI the helpers speak — fixed-layout structs such as
//!    [`api::PeerInfo`], network-byte-order attribute payloads, and the
//!    numeric constants shared between host implementations and extension
//!    bytecode.
//! 2. **Insertion points** ([`api::InsertionPoint`]): the five locations in
//!    a BGP implementation where extension code can attach (Fig. 2's green
//!    circles).
//! 3. **The Virtual Machine Manager** ([`vmm::Vmm`]): loads a
//!    [`manifest::Manifest`], verifies each bytecode against the helpers it
//!    declares, attaches it to its insertion point, and at runtime
//!    multiplexes execution — ordered chains, `next()` delegation, fallback
//!    to the host's native behaviour, monitored execution with error
//!    containment, and isolated ephemeral/persistent extension memory.
//!
//! A BGP implementation becomes xBGP-compliant by implementing the
//! [`host::HostApi`] trait and calling [`vmm::Vmm::run`] at each insertion
//! point. The two daemons in this workspace (`bgp-fir`, `bgp-wren`) do
//! exactly that, with internal representations as different as FRRouting's
//! and BIRD's — the same bytecode runs unmodified on both.

pub mod api;
pub mod contracts;
pub mod host;
pub mod manifest;
pub mod policy;
pub mod vmm;

pub use api::{helper, InsertionPoint, NextHopInfo, PeerInfo, PeerType};
pub use contracts::analysis_options;
pub use host::{HostApi, HostError, HostOp};
pub use manifest::{ExtensionSpec, Manifest};
pub use policy::{ExecPolicy, OnFault};
pub use vmm::{Vmm, VmmError, VmmOutcome};
pub use xbgp_vm::Engine;
