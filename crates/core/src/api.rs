//! The xBGP API: insertion points, helper identifiers, and the neutral ABI.
//!
//! Everything in this module is part of the *vendor-neutral contract*
//! between extension bytecode and host implementations. Helper ids, struct
//! layouts, and constants must never change meaning once published — the
//! whole point of xBGP is that one compiled program runs on every
//! compliant implementation.

use std::collections::{HashMap, HashSet};

/// The locations inside a BGP implementation where extension code can be
/// attached (the paper's Fig. 2, green circles 1-5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InsertionPoint {
    /// ① Raw UPDATE received from a peer, before import filtering. The raw
    /// message body (network byte order) is argument 0; the extension may
    /// attach attributes to the route(s) with `add_attr`.
    BgpReceiveMessage,
    /// ② Import policy applied to one decoded route.
    /// Return [`FILTER_REJECT`] to drop, [`FILTER_ACCEPT`] to accept, or
    /// call `next()` to delegate.
    BgpInboundFilter,
    /// ③ Best-path comparison step of the decision process. Argument 0 is
    /// the candidate route's attribute section, argument 1 the current
    /// best's; return [`DECISION_PREFER_NEW`] or [`DECISION_PREFER_OLD`],
    /// or `next()` for the host's native comparison.
    BgpDecision,
    /// ④ Export policy applied per peer before a route enters the
    /// Adj-RIB-Out. Same conventions as the inbound filter.
    BgpOutboundFilter,
    /// ⑤ Serialization of an outgoing UPDATE. The extension may append
    /// extra attribute TLVs to the message with `write_buf`.
    BgpEncodeMessage,
}

impl InsertionPoint {
    /// All insertion points, in pipeline order.
    pub const ALL: [InsertionPoint; 5] = [
        InsertionPoint::BgpReceiveMessage,
        InsertionPoint::BgpInboundFilter,
        InsertionPoint::BgpDecision,
        InsertionPoint::BgpOutboundFilter,
        InsertionPoint::BgpEncodeMessage,
    ];

    /// The manifest spelling of this insertion point.
    pub fn name(self) -> &'static str {
        match self {
            InsertionPoint::BgpReceiveMessage => "bgp_receive_message",
            InsertionPoint::BgpInboundFilter => "bgp_inbound_filter",
            InsertionPoint::BgpDecision => "bgp_decision",
            InsertionPoint::BgpOutboundFilter => "bgp_outbound_filter",
            InsertionPoint::BgpEncodeMessage => "bgp_encode_message",
        }
    }

    /// Inverse of [`InsertionPoint::name`], for manifest parsing.
    pub fn from_name(name: &str) -> Option<InsertionPoint> {
        InsertionPoint::ALL.into_iter().find(|p| p.name() == name)
    }
}

/// Filter verdicts (inbound/outbound filter insertion points).
pub const FILTER_REJECT: u64 = 0;
/// See [`FILTER_REJECT`].
pub const FILTER_ACCEPT: u64 = 1;
/// Decision-point verdict: keep the current best route.
pub const DECISION_PREFER_OLD: u64 = 0;
/// Decision-point verdict: prefer the candidate route.
pub const DECISION_PREFER_NEW: u64 = 1;

/// Session types as seen by `get_peer_info`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u32)]
pub enum PeerType {
    Ibgp = 0,
    Ebgp = 1,
}

/// ABI constant: `peer_type` value for iBGP sessions.
pub const IBGP_SESSION: u64 = 0;
/// ABI constant: `peer_type` value for eBGP sessions.
pub const EBGP_SESSION: u64 = 1;

/// Origin-validation results returned by `rpki_check_origin`
/// (RFC 6811 states).
pub const ROV_NOT_FOUND: u64 = 0;
/// See [`ROV_NOT_FOUND`].
pub const ROV_VALID: u64 = 1;
/// See [`ROV_NOT_FOUND`].
pub const ROV_INVALID: u64 = 2;

/// Sentinel returned by lookup helpers when the requested item is absent
/// or the destination buffer is too small.
pub const XBGP_FAIL: u64 = u64::MAX;

/// Marshalled peer information (`get_peer_info`).
///
/// Wire layout (little-endian, 24 bytes):
///
/// | offset | field            |
/// |--------|------------------|
/// | 0      | `router_id: u32` |
/// | 4      | `asn: u32`       |
/// | 8      | `peer_type: u32` |
/// | 12     | `local_router_id: u32` |
/// | 16     | `local_asn: u32` |
/// | 20     | `flags: u32`     |
///
/// `flags` bit 0 ([`PEER_FLAG_RR_CLIENT`]) marks a route-reflection
/// client; bit 1 ([`PEER_FLAG_LOCAL`]) marks a pseudo-peer describing a
/// locally originated route (used when a peer-info blob describes a
/// route's *source*, as at the outbound-filter and encode points).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerInfo {
    pub router_id: u32,
    pub asn: u32,
    pub peer_type: PeerType,
    pub local_router_id: u32,
    pub local_asn: u32,
    pub flags: u32,
}

/// Byte offset of `peer_type` inside the marshalled [`PeerInfo`].
pub const PEER_INFO_OFF_ROUTER_ID: i64 = 0;
pub const PEER_INFO_OFF_ASN: i64 = 4;
pub const PEER_INFO_OFF_TYPE: i64 = 8;
pub const PEER_INFO_OFF_LOCAL_ROUTER_ID: i64 = 12;
pub const PEER_INFO_OFF_LOCAL_ASN: i64 = 16;
pub const PEER_INFO_OFF_FLAGS: i64 = 20;
/// Marshalled size of [`PeerInfo`].
pub const PEER_INFO_SIZE: usize = 24;

/// `PeerInfo::flags` bit: the peer is a route-reflection client.
pub const PEER_FLAG_RR_CLIENT: u32 = 1;
/// `PeerInfo::flags` bit: pseudo-peer for a locally originated route.
pub const PEER_FLAG_LOCAL: u32 = 2;

impl PeerInfo {
    /// Marshal to the fixed ABI layout.
    pub fn to_bytes(&self) -> [u8; PEER_INFO_SIZE] {
        let mut b = [0u8; PEER_INFO_SIZE];
        b[0..4].copy_from_slice(&self.router_id.to_le_bytes());
        b[4..8].copy_from_slice(&self.asn.to_le_bytes());
        b[8..12].copy_from_slice(&(self.peer_type as u32).to_le_bytes());
        b[12..16].copy_from_slice(&self.local_router_id.to_le_bytes());
        b[16..20].copy_from_slice(&self.local_asn.to_le_bytes());
        b[20..24].copy_from_slice(&self.flags.to_le_bytes());
        b
    }
}

/// Marshalled nexthop information (`get_nexthop`).
///
/// Wire layout (little-endian, 12 bytes):
///
/// | offset | field              |
/// |--------|--------------------|
/// | 0      | `addr: u32`        |
/// | 4      | `igp_metric: u32`  |
/// | 8      | `reachable: u32`   |
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NextHopInfo {
    /// Nexthop address, host byte order.
    pub addr: u32,
    /// IGP cost to reach the nexthop ([`u32::MAX`] when unreachable).
    pub igp_metric: u32,
    /// 1 when the IGP can currently reach the nexthop.
    pub reachable: bool,
}

pub const NEXTHOP_OFF_ADDR: i64 = 0;
pub const NEXTHOP_OFF_IGP_METRIC: i64 = 4;
pub const NEXTHOP_OFF_REACHABLE: i64 = 8;
/// Marshalled size of [`NextHopInfo`].
pub const NEXTHOP_INFO_SIZE: usize = 12;

impl NextHopInfo {
    /// Marshal to the fixed ABI layout.
    pub fn to_bytes(&self) -> [u8; NEXTHOP_INFO_SIZE] {
        let mut b = [0u8; NEXTHOP_INFO_SIZE];
        b[0..4].copy_from_slice(&self.addr.to_le_bytes());
        b[4..8].copy_from_slice(&self.igp_metric.to_le_bytes());
        b[8..12].copy_from_slice(&u32::from(self.reachable).to_le_bytes());
        b
    }
}

/// Byte offset of the address field in the marshalled prefix
/// (`get_prefix` helper): `{ addr: u32 host order, len: u32 }`.
pub const PREFIX_OFF_ADDR: i64 = 0;
/// Byte offset of the length field in the marshalled prefix.
pub const PREFIX_OFF_LEN: i64 = 4;
/// Marshalled size of a prefix.
pub const PREFIX_INFO_SIZE: usize = 8;

/// Helper function identifiers — the stable numeric ABI of the xBGP API.
pub mod helper {
    /// `next()` — delegate to the next extension in the chain (§2.1).
    pub const NEXT: u32 = 1;
    /// `get_arg(idx, dst, cap) -> len | XBGP_FAIL` — copy insertion-point
    /// argument `idx` (e.g. the raw UPDATE body) into extension memory.
    pub const GET_ARG: u32 = 2;
    /// `arg_len(idx) -> len | XBGP_FAIL`.
    pub const ARG_LEN: u32 = 3;
    /// `get_peer_info() -> ptr` to a marshalled [`super::PeerInfo`].
    pub const GET_PEER_INFO: u32 = 4;
    /// `get_nexthop() -> ptr | 0` to a marshalled [`super::NextHopInfo`].
    pub const GET_NEXTHOP: u32 = 5;
    /// `get_attr(code, dst, cap) -> len | XBGP_FAIL` — attribute payload in
    /// network byte order.
    pub const GET_ATTR: u32 = 6;
    /// `set_attr(code, flags, ptr, len) -> 0 | XBGP_FAIL` — upsert.
    pub const SET_ATTR: u32 = 7;
    /// `add_attr(code, flags, ptr, len) -> 0 | XBGP_FAIL` — add, failing if
    /// the attribute already exists.
    pub const ADD_ATTR: u32 = 8;
    /// `remove_attr(code) -> 0 | XBGP_FAIL`.
    pub const REMOVE_ATTR: u32 = 9;
    /// `get_xtra(key_ptr, key_len, dst, cap) -> len | XBGP_FAIL` — static
    /// data from the manifest / router configuration.
    pub const GET_XTRA: u32 = 10;
    /// `write_buf(ptr, len) -> written | XBGP_FAIL` — append bytes to the
    /// host's output buffer (encode-message insertion point).
    pub const WRITE_BUF: u32 = 11;
    /// `ebpf_memcpy(dst, src, len) -> dst`.
    pub const EBPF_MEMCPY: u32 = 12;
    /// `bpf_htonl(v) -> v'` (and friends): byte-order conversions.
    pub const BPF_HTONL: u32 = 13;
    pub const BPF_NTOHL: u32 = 14;
    pub const BPF_HTONS: u32 = 15;
    pub const BPF_NTOHS: u32 = 16;
    /// `ebpf_print(ptr, len) -> 0` — debug output through the host logger.
    pub const EBPF_PRINT: u32 = 17;
    /// `ctx_malloc(size) -> ptr | 0` — ephemeral allocation, freed
    /// automatically when the extension returns (§2.1).
    pub const CTX_MALLOC: u32 = 18;
    /// `ctx_shared_malloc(key, size) -> ptr | 0` — persistent allocation in
    /// the program's shared memory space.
    pub const CTX_SHARED_MALLOC: u32 = 19;
    /// `ctx_shared_get(key) -> ptr | 0`.
    pub const CTX_SHARED_GET: u32 = 20;
    /// `rpki_check_origin(prefix_addr, prefix_len, asn) -> ROV_*`.
    pub const RPKI_CHECK_ORIGIN: u32 = 21;
    /// `rib_add_route(prefix_addr, prefix_len, nexthop) -> 0 | XBGP_FAIL` —
    /// install a route into the RIB through a hidden-argument context.
    pub const RIB_ADD_ROUTE: u32 = 22;
    /// `get_prefix() -> ptr | 0` to the marshalled prefix of the current
    /// route: `{ addr: u32 (host order), len: u32 }`, little-endian.
    pub const GET_PREFIX: u32 = 23;

    /// Name ↔ id table (used by the assembler's symbol table and by
    /// manifests that whitelist helpers by name).
    pub const TABLE: &[(&str, u32)] = &[
        ("next", NEXT),
        ("get_arg", GET_ARG),
        ("arg_len", ARG_LEN),
        ("get_peer_info", GET_PEER_INFO),
        ("get_nexthop", GET_NEXTHOP),
        ("get_attr", GET_ATTR),
        ("set_attr", SET_ATTR),
        ("add_attr", ADD_ATTR),
        ("remove_attr", REMOVE_ATTR),
        ("get_xtra", GET_XTRA),
        ("write_buf", WRITE_BUF),
        ("ebpf_memcpy", EBPF_MEMCPY),
        ("bpf_htonl", BPF_HTONL),
        ("bpf_ntohl", BPF_NTOHL),
        ("bpf_htons", BPF_HTONS),
        ("bpf_ntohs", BPF_NTOHS),
        ("ebpf_print", EBPF_PRINT),
        ("ctx_malloc", CTX_MALLOC),
        ("ctx_shared_malloc", CTX_SHARED_MALLOC),
        ("ctx_shared_get", CTX_SHARED_GET),
        ("rpki_check_origin", RPKI_CHECK_ORIGIN),
        ("rib_add_route", RIB_ADD_ROUTE),
        ("get_prefix", GET_PREFIX),
    ];

    /// Resolve a helper name to its id.
    pub fn id_of(name: &str) -> Option<u32> {
        TABLE.iter().find(|(n, _)| *n == name).map(|(_, id)| *id)
    }

    /// Resolve a helper id to its name.
    pub fn name_of(id: u32) -> Option<&'static str> {
        TABLE.iter().find(|(_, i)| *i == id).map(|(n, _)| *n)
    }
}

/// The full helper id set (for verifying programs allowed to use the whole
/// API).
pub fn all_helper_ids() -> HashSet<u32> {
    helper::TABLE.iter().map(|(_, id)| *id).collect()
}

/// The symbol table handed to the assembler: helper names plus every ABI
/// constant an extension program may reference by name.
pub fn abi_symbols() -> HashMap<String, i64> {
    let mut m: HashMap<String, i64> =
        helper::TABLE.iter().map(|(n, id)| (n.to_string(), i64::from(*id))).collect();
    let consts: &[(&str, i64)] = &[
        ("FILTER_REJECT", FILTER_REJECT as i64),
        ("FILTER_ACCEPT", FILTER_ACCEPT as i64),
        ("DECISION_PREFER_OLD", DECISION_PREFER_OLD as i64),
        ("DECISION_PREFER_NEW", DECISION_PREFER_NEW as i64),
        ("IBGP_SESSION", IBGP_SESSION as i64),
        ("EBGP_SESSION", EBGP_SESSION as i64),
        ("ROV_NOT_FOUND", ROV_NOT_FOUND as i64),
        ("ROV_VALID", ROV_VALID as i64),
        ("ROV_INVALID", ROV_INVALID as i64),
        ("PEER_INFO_OFF_ROUTER_ID", PEER_INFO_OFF_ROUTER_ID),
        ("PEER_INFO_OFF_ASN", PEER_INFO_OFF_ASN),
        ("PEER_INFO_OFF_TYPE", PEER_INFO_OFF_TYPE),
        ("PEER_INFO_OFF_LOCAL_ROUTER_ID", PEER_INFO_OFF_LOCAL_ROUTER_ID),
        ("PEER_INFO_OFF_LOCAL_ASN", PEER_INFO_OFF_LOCAL_ASN),
        ("PEER_INFO_OFF_FLAGS", PEER_INFO_OFF_FLAGS),
        ("PEER_FLAG_RR_CLIENT", PEER_FLAG_RR_CLIENT as i64),
        ("PEER_FLAG_LOCAL", PEER_FLAG_LOCAL as i64),
        ("NEXTHOP_OFF_ADDR", NEXTHOP_OFF_ADDR),
        ("NEXTHOP_OFF_IGP_METRIC", NEXTHOP_OFF_IGP_METRIC),
        ("NEXTHOP_OFF_REACHABLE", NEXTHOP_OFF_REACHABLE),
        ("PREFIX_OFF_ADDR", PREFIX_OFF_ADDR),
        ("PREFIX_OFF_LEN", PREFIX_OFF_LEN),
        // Well-known BGP attribute codes, for get_attr/set_attr calls.
        ("ATTR_ORIGIN", 1),
        ("ATTR_AS_PATH", 2),
        ("ATTR_NEXT_HOP", 3),
        ("ATTR_MED", 4),
        ("ATTR_LOCAL_PREF", 5),
        ("ATTR_AGGREGATOR", 7),
        ("ATTR_COMMUNITIES", 8),
        ("ATTR_ORIGINATOR_ID", 9),
        ("ATTR_CLUSTER_LIST", 10),
        // Attribute flag octets.
        ("ATTR_FLAGS_WELL_KNOWN", 0x40),
        ("ATTR_FLAGS_OPT_TRANS", 0xc0),
        ("ATTR_FLAGS_OPT_NON_TRANS", 0x80),
    ];
    for (k, v) in consts {
        m.insert((*k).to_string(), *v);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helper_table_is_bijective() {
        let mut names = HashSet::new();
        let mut ids = HashSet::new();
        for (n, id) in helper::TABLE {
            assert!(names.insert(*n), "duplicate helper name {n}");
            assert!(ids.insert(*id), "duplicate helper id {id}");
            assert_eq!(helper::id_of(n), Some(*id));
            assert_eq!(helper::name_of(*id), Some(*n));
        }
    }

    #[test]
    fn peer_info_layout_matches_offsets() {
        let pi = PeerInfo {
            router_id: 0x0101_0101,
            asn: 65001,
            peer_type: PeerType::Ebgp,
            local_router_id: 0x0202_0202,
            local_asn: 65000,
            flags: PEER_FLAG_RR_CLIENT,
        };
        let b = pi.to_bytes();
        let at = |off: i64| {
            let o = off as usize;
            u32::from_le_bytes([b[o], b[o + 1], b[o + 2], b[o + 3]])
        };
        assert_eq!(at(PEER_INFO_OFF_ROUTER_ID), 0x0101_0101);
        assert_eq!(at(PEER_INFO_OFF_ASN), 65001);
        assert_eq!(at(PEER_INFO_OFF_TYPE), 1);
        assert_eq!(at(PEER_INFO_OFF_LOCAL_ROUTER_ID), 0x0202_0202);
        assert_eq!(at(PEER_INFO_OFF_LOCAL_ASN), 65000);
        assert_eq!(at(PEER_INFO_OFF_FLAGS), PEER_FLAG_RR_CLIENT);
    }

    #[test]
    fn nexthop_layout_matches_offsets() {
        let nh = NextHopInfo { addr: 0x0a00_0001, igp_metric: 1000, reachable: true };
        let b = nh.to_bytes();
        assert_eq!(u32::from_le_bytes([b[4], b[5], b[6], b[7]]), 1000);
        assert_eq!(u32::from_le_bytes([b[8], b[9], b[10], b[11]]), 1);
    }

    #[test]
    fn abi_symbols_include_helpers_and_constants() {
        let syms = abi_symbols();
        assert_eq!(syms["next"], 1);
        assert_eq!(syms["EBGP_SESSION"], 1);
        assert_eq!(syms["FILTER_REJECT"], 0);
        assert_eq!(syms["NEXTHOP_OFF_IGP_METRIC"], 4);
        assert_eq!(syms["ATTR_ORIGINATOR_ID"], 9);
    }

    #[test]
    fn insertion_point_names_round_trip() {
        for p in InsertionPoint::ALL {
            assert_eq!(InsertionPoint::from_name(p.name()), Some(p));
        }
        assert_eq!(InsertionPoint::from_name("nope"), None);
    }
}
