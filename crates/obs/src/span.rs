//! Scoped span timers: RAII wall-clock measurement into a histogram.

use crate::metrics::Histogram;
use std::time::Instant;

/// Records elapsed nanoseconds into a [`Histogram`] when dropped.
///
/// ```
/// use xbgp_obs::{Histogram, SpanTimer};
/// let hist = Histogram::new();
/// {
///     let _span = SpanTimer::start(&hist);
///     // ... timed work ...
/// }
/// assert_eq!(hist.snapshot().count, 1);
/// ```
#[must_use = "a span timer measures until it is dropped"]
pub struct SpanTimer<'a> {
    hist: &'a Histogram,
    start: Instant,
}

impl<'a> SpanTimer<'a> {
    pub fn start(hist: &'a Histogram) -> SpanTimer<'a> {
        SpanTimer { hist, start: Instant::now() }
    }

    /// Elapsed time so far, without ending the span.
    pub fn elapsed_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    /// End the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for SpanTimer<'_> {
    fn drop(&mut self) {
        self.hist.observe(self.start.elapsed().as_nanos() as u64);
    }
}

/// Time a closure into `hist`, returning its result.
pub fn time<R>(hist: &Histogram, f: impl FnOnce() -> R) -> R {
    let _span = SpanTimer::start(hist);
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_observes_on_drop() {
        let h = Histogram::new();
        {
            let _s = SpanTimer::start(&h);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 1);
    }

    #[test]
    fn time_wraps_a_closure() {
        let h = Histogram::new();
        let v = time(&h, || 7 * 6);
        assert_eq!(v, 42);
        assert_eq!(h.snapshot().count, 1);
    }

    #[test]
    fn finish_ends_early() {
        let h = Histogram::new();
        let s = SpanTimer::start(&h);
        assert!(s.elapsed_ns() < 1_000_000_000);
        s.finish();
        assert_eq!(h.snapshot().count, 1);
    }
}
