//! Metric registry and point-in-time snapshots.
//!
//! The registry's mutex guards only the name → handle map; callers
//! register once, keep the returned `Arc`, and update through atomics.
//! Snapshots can also be assembled directly ([`Snapshot::push_counter`]
//! and friends) by components that keep plain integer counters and only
//! materialise metrics on demand — the VMM does this so its hot path pays
//! a `u64` increment, not a map lookup.

use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MergeError};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Label set: ordered `(key, value)` pairs.
pub type Labels = Vec<(String, String)>;

fn labels_of(pairs: &[(&str, &str)]) -> Labels {
    pairs.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect()
}

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    name: String,
    labels: Labels,
}

enum Slot {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// Get-or-register store of named metrics.
#[derive(Default)]
pub struct Registry {
    slots: Mutex<BTreeMap<Key, Slot>>,
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Get or create the counter `name{labels}`. Panics if the name+labels
    /// pair is already registered as a different metric type.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let key = Key { name: name.to_string(), labels: labels_of(labels) };
        let mut slots = self.slots.lock().unwrap();
        match slots.entry(key).or_insert_with(|| Slot::Counter(Arc::new(Counter::new()))) {
            Slot::Counter(c) => Arc::clone(c),
            _ => panic!("metric `{name}` already registered with a different type"),
        }
    }

    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let key = Key { name: name.to_string(), labels: labels_of(labels) };
        let mut slots = self.slots.lock().unwrap();
        match slots.entry(key).or_insert_with(|| Slot::Gauge(Arc::new(Gauge::new()))) {
            Slot::Gauge(g) => Arc::clone(g),
            _ => panic!("metric `{name}` already registered with a different type"),
        }
    }

    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        let key = Key { name: name.to_string(), labels: labels_of(labels) };
        let mut slots = self.slots.lock().unwrap();
        match slots.entry(key).or_insert_with(|| Slot::Histogram(Arc::new(Histogram::new()))) {
            Slot::Histogram(h) => Arc::clone(h),
            _ => panic!("metric `{name}` already registered with a different type"),
        }
    }

    /// Copy every registered metric's current value.
    pub fn snapshot(&self) -> Snapshot {
        let slots = self.slots.lock().unwrap();
        let metrics = slots
            .iter()
            .map(|(key, slot)| Metric {
                name: key.name.clone(),
                labels: key.labels.clone(),
                value: match slot {
                    Slot::Counter(c) => MetricValue::Counter(c.get()),
                    Slot::Gauge(g) => MetricValue::Gauge(g.get()),
                    Slot::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                },
            })
            .collect();
        Snapshot { metrics }
    }
}

/// One exported metric sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    pub name: String,
    pub labels: Labels,
    pub value: MetricValue,
}

#[derive(Debug, Clone, PartialEq)]
// Histogram carries its full bucket array inline; snapshots are few and
// short-lived, so the per-variant size gap is not worth a Box indirection.
#[allow(clippy::large_enum_variant)]
pub enum MetricValue {
    Counter(u64),
    Gauge(i64),
    Histogram(HistogramSnapshot),
}

/// A point-in-time collection of metrics, ready for export.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    pub metrics: Vec<Metric>,
}

impl Snapshot {
    pub fn new() -> Snapshot {
        Snapshot::default()
    }

    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    pub fn push_counter(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.metrics.push(Metric {
            name: name.to_string(),
            labels: labels_of(labels),
            value: MetricValue::Counter(value),
        });
    }

    pub fn push_gauge(&mut self, name: &str, labels: &[(&str, &str)], value: i64) {
        self.metrics.push(Metric {
            name: name.to_string(),
            labels: labels_of(labels),
            value: MetricValue::Gauge(value),
        });
    }

    pub fn push_histogram(&mut self, name: &str, labels: &[(&str, &str)], h: HistogramSnapshot) {
        self.metrics.push(Metric {
            name: name.to_string(),
            labels: labels_of(labels),
            value: MetricValue::Histogram(h),
        });
    }

    /// Merge `other` into this snapshot, summing same-kind metrics.
    ///
    /// A metric in `other` whose `(name, labels)` pair already exists here
    /// with the same value kind is *combined*: counters and gauges add,
    /// histograms merge bucket-wise. Anything else is appended. This is
    /// what makes per-shard snapshots aggregate into the totals a
    /// single-threaded run over the whole workload would report; callers
    /// that tag snapshots with distinct labels first (`with_labels`) get
    /// the old append behaviour because no keys collide.
    ///
    /// Histogram merges are layout-checked: a bucket-count mismatch (or a
    /// malformed histogram claiming observations without buckets) aborts
    /// with [`MergeError`] naming the metric, leaving `self` with every
    /// metric merged up to the offending one.
    pub fn merge(&mut self, other: Snapshot) -> Result<(), MergeError> {
        for m in other.metrics {
            let slot = self.metrics.iter().position(|e| e.name == m.name && e.labels == m.labels);
            match slot {
                Some(i) => match (&mut self.metrics[i].value, m.value) {
                    (MetricValue::Counter(a), MetricValue::Counter(b)) => *a += b,
                    (MetricValue::Gauge(a), MetricValue::Gauge(b)) => *a += b,
                    (MetricValue::Histogram(a), MetricValue::Histogram(b)) => {
                        a.merge(&b).map_err(|e| e.with_metric(&m.name))?
                    }
                    // Same key, different kind: keep both rather than guess.
                    (_, value) => {
                        self.metrics.push(Metric { name: m.name, labels: m.labels, value })
                    }
                },
                None => self.metrics.push(m),
            }
        }
        Ok(())
    }

    /// Prefix every metric's label set with `extra` — how a harness tags a
    /// daemon-local snapshot with `daemon="bgp-fir"` before merging.
    pub fn with_labels(mut self, extra: &[(&str, &str)]) -> Snapshot {
        for m in &mut self.metrics {
            let mut labels = labels_of(extra);
            labels.append(&mut m.labels);
            m.labels = labels;
        }
        self
    }

    /// Sort by name then labels, for deterministic export output.
    pub fn sorted(mut self) -> Snapshot {
        self.metrics.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        self
    }

    /// Look up a counter by name and a subset of its labels.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        self.find(name, labels).and_then(|m| match &m.value {
            MetricValue::Counter(v) => Some(*v),
            _ => None,
        })
    }

    /// Sum a counter across *all* of its label sets — e.g. total
    /// rollbacks regardless of insertion point or daemon. Returns 0 when
    /// the counter is absent, so callers asserting "no rollbacks" don't
    /// have to distinguish missing from zero.
    pub fn counter_sum(&self, name: &str) -> u64 {
        self.metrics
            .iter()
            .filter(|m| m.name == name)
            .filter_map(|m| match &m.value {
                MetricValue::Counter(v) => Some(*v),
                _ => None,
            })
            .sum()
    }

    /// Look up a gauge by name and a subset of its labels.
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<i64> {
        self.find(name, labels).and_then(|m| match &m.value {
            MetricValue::Gauge(v) => Some(*v),
            _ => None,
        })
    }

    /// Look up a histogram by name and a subset of its labels.
    pub fn histogram_value(
        &self,
        name: &str,
        labels: &[(&str, &str)],
    ) -> Option<&HistogramSnapshot> {
        self.find(name, labels).and_then(|m| match &m.value {
            MetricValue::Histogram(h) => Some(h),
            _ => None,
        })
    }

    /// First metric matching `name` whose labels contain every pair in
    /// `labels`.
    pub fn find(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Metric> {
        self.metrics.iter().find(|m| {
            m.name == name
                && labels.iter().all(|(k, v)| m.labels.iter().any(|(mk, mv)| mk == k && mv == v))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_update_snapshot() {
        let r = Registry::new();
        let runs = r.counter("runs_total", &[("point", "decision")]);
        let rib = r.gauge("rib_size", &[]);
        let lat = r.histogram("latency_ns", &[]);
        runs.add(3);
        rib.set(100);
        lat.observe(500);

        let s = r.snapshot();
        assert_eq!(s.counter_value("runs_total", &[("point", "decision")]), Some(3));
        assert_eq!(s.gauge_value("rib_size", &[]), Some(100));
        assert_eq!(s.histogram_value("latency_ns", &[]).unwrap().count, 1);
    }

    #[test]
    fn counter_sum_totals_across_label_sets() {
        let mut s = Snapshot::new();
        s.push_counter("rollbacks", &[("point", "inbound_filter")], 3);
        s.push_counter("rollbacks", &[("point", "decision")], 2);
        s.push_gauge("rollbacks", &[("point", "bogus")], 100); // wrong kind: ignored
        assert_eq!(s.counter_sum("rollbacks"), 5);
        assert_eq!(s.counter_sum("never_registered"), 0);
    }

    #[test]
    fn registration_is_idempotent() {
        let r = Registry::new();
        let a = r.counter("x", &[]);
        let b = r.counter("x", &[]);
        a.inc();
        b.inc();
        assert_eq!(r.snapshot().counter_value("x", &[]), Some(2));
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_conflict_panics() {
        let r = Registry::new();
        let _ = r.counter("x", &[]);
        let _ = r.gauge("x", &[]);
    }

    #[test]
    fn with_labels_prefixes_and_merge_appends() {
        let mut a = Snapshot::new();
        a.push_counter("runs", &[("point", "decision")], 5);
        let a = a.with_labels(&[("daemon", "bgp-fir")]);
        assert_eq!(
            a.counter_value("runs", &[("daemon", "bgp-fir"), ("point", "decision")]),
            Some(5)
        );

        let mut b = Snapshot::new();
        b.push_gauge("rib", &[], 9);
        let mut merged = a;
        merged.merge(b).unwrap();
        assert_eq!(merged.metrics.len(), 2);
    }

    #[test]
    fn merge_sums_matching_counters_gauges_and_histograms() {
        // Two "shards" each observe part of a workload; merging their
        // snapshots must equal one snapshot of the whole workload.
        let whole = Registry::new();
        let shard_a = Registry::new();
        let shard_b = Registry::new();
        for (i, r) in [&shard_a, &shard_b, &whole, &whole].iter().enumerate() {
            let n = (i % 2 + 1) as u64 * 10; // a: 10, b: 20, whole: 10+20
            r.counter("updates_total", &[("point", "inbound")]).add(n);
            r.gauge("rib_size", &[]).add(n as i64);
            r.histogram("latency_ns", &[]).observe(n);
        }

        let mut merged = shard_a.snapshot();
        merged.merge(shard_b.snapshot()).unwrap();
        let expect = whole.snapshot();
        assert_eq!(
            merged.counter_value("updates_total", &[("point", "inbound")]),
            expect.counter_value("updates_total", &[("point", "inbound")]),
        );
        assert_eq!(merged.gauge_value("rib_size", &[]), expect.gauge_value("rib_size", &[]));
        let (mh, eh) = (
            merged.histogram_value("latency_ns", &[]).unwrap(),
            expect.histogram_value("latency_ns", &[]).unwrap(),
        );
        assert_eq!(mh.count, eh.count);
        assert_eq!(mh.sum, eh.sum);
        assert_eq!(mh.buckets, eh.buckets);
        assert_eq!(merged.metrics.len(), 3, "matching keys combined, not appended");
    }

    #[test]
    fn merge_keeps_distinct_keys_and_kind_conflicts_separate() {
        let mut a = Snapshot::new();
        a.push_counter("x", &[("shard", "0")], 1);
        a.push_counter("y", &[], 2);
        let mut b = Snapshot::new();
        b.push_counter("x", &[("shard", "1")], 3); // different labels
        b.push_gauge("y", &[], 4); // same key, different kind
        a.merge(b).unwrap();
        assert_eq!(a.metrics.len(), 4);
        assert_eq!(a.counter_value("x", &[("shard", "0")]), Some(1));
        assert_eq!(a.counter_value("x", &[("shard", "1")]), Some(3));
        assert_eq!(a.counter_value("y", &[]), Some(2));
        assert!(a
            .metrics
            .iter()
            .any(|m| m.name == "y" && matches!(m.value, MetricValue::Gauge(4))));
    }

    #[test]
    fn merge_surfaces_bucket_mismatch_with_metric_name() {
        let mut a = Snapshot::new();
        a.push_histogram(
            "hook_ns",
            &[],
            HistogramSnapshot { buckets: vec![1; 64], count: 64, sum: 64 },
        );
        let mut b = Snapshot::new();
        b.push_histogram(
            "hook_ns",
            &[],
            HistogramSnapshot { buckets: vec![1; 8], count: 8, sum: 8 },
        );
        let err = a.merge(b).unwrap_err();
        assert_eq!(
            err,
            MergeError::BucketCountMismatch { metric: "hook_ns".into(), left: 64, right: 8 }
        );
    }

    #[test]
    fn handles_are_usable_across_threads() {
        let r = Registry::new();
        let c = r.counter("t", &[]);
        let mut joins = Vec::new();
        for _ in 0..4 {
            let c = Arc::clone(&c);
            joins.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    c.inc();
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(c.get(), 4000);
    }
}
