//! Dependency-free JSON: a small recursive-descent parser and a writer.
//!
//! Used by the metrics JSON exporter, extension manifests, and scenario
//! files. Objects preserve insertion order (`Vec` of pairs) so exported
//! documents are deterministic. Numbers are held as `f64`; integral values
//! up to 2^53 round-trip exactly, which covers every counter this
//! workspace exports in practice.

use std::collections::HashMap;
use std::fmt;

#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Num(n) if n.fract() == 0.0 && *n >= i64::MIN as f64 && *n <= i64::MAX as f64 => {
                Some(*n as i64)
            }
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(o) => Some(o),
            _ => None,
        }
    }

    /// Object member lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(o) => o.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Object member names, for `deny_unknown_fields`-style validation.
    pub fn keys(&self) -> Vec<&str> {
        match self {
            Value::Obj(o) => o.iter().map(|(k, _)| k.as_str()).collect(),
            _ => Vec::new(),
        }
    }

    pub fn parse(input: &str) -> Result<Value, String> {
        let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Two-space indented rendering. Compact rendering is `Display`
    /// (`value.to_string()`).
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => out.push_str(&fmt_number(*n)),
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d);
                })
            }
            Value::Obj(members) => {
                write_seq(out, indent, depth, '{', '}', members.len(), |out, i, d| {
                    let (k, v) = &members[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, d);
                })
            }
        }
    }
}

/// Convenience constructors so call sites read declaratively.
impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Value {
        Value::Num(n as f64)
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Value {
        Value::Num(n as f64)
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Value {
        Value::Num(n as f64)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Num(n)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl<K: Into<String>, V: Into<Value>> FromIterator<(K, V)> for Value {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Value {
        Value::Obj(iter.into_iter().map(|(k, v)| (k.into(), v.into())).collect())
    }
}

impl<V: Into<Value>> From<Vec<V>> for Value {
    fn from(items: Vec<V>) -> Value {
        Value::Arr(items.into_iter().map(Into::into).collect())
    }
}

impl From<HashMap<String, Value>> for Value {
    fn from(map: HashMap<String, Value>) -> Value {
        let mut members: Vec<(String, Value)> = map.into_iter().collect();
        members.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Obj(members)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        f.write_str(&out)
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
}

fn fmt_number(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 9.0e15 {
        format!("{}", n as i64)
    } else if n.is_finite() {
        format!("{n}")
    } else {
        // JSON has no Inf/NaN; null is the conventional stand-in.
        "null".to_string()
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(format!("unexpected `{}` at byte {}", b as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("invalid number `{text}` at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err("truncated \\u escape".to_string());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            // Surrogate pairs are not reconstructed; BMP
                            // only, which is all the workspace emits.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input came from &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_scalars() {
        assert_eq!(Value::parse("null").unwrap(), Value::Null);
        assert_eq!(Value::parse("true").unwrap(), Value::Bool(true));
        assert_eq!(Value::parse(" -12.5 ").unwrap(), Value::Num(-12.5));
        assert_eq!(Value::parse(r#""a\nb""#).unwrap(), Value::Str("a\nb".into()));
        assert_eq!(Value::parse(r#""A""#).unwrap(), Value::Str("A".into()));
    }

    #[test]
    fn parse_nested_structures() {
        let v = Value::parse(r#"{"a": [1, {"b": "x"}, false], "c": {}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[1].get("b").unwrap().as_str(),
            Some("x")
        );
        assert_eq!(v.get("c").unwrap(), &Value::Obj(vec![]));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,", "{\"a\" 1}", "tru", "\"unterminated", "1 2", "{'a':1}"] {
            assert!(Value::parse(bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn round_trips_compact_and_pretty() {
        let src = r#"{"name":"xbgp","runs":42,"ok":true,"tags":["a","b"],"nested":{"x":1.5}}"#;
        let v = Value::parse(src).unwrap();
        assert_eq!(Value::parse(&v.to_string()).unwrap(), v);
        assert_eq!(Value::parse(&v.to_string_pretty()).unwrap(), v);
        assert_eq!(v.to_string(), src);
    }

    #[test]
    fn escapes_special_characters() {
        let v = Value::Str("quote\" slash\\ ctl\u{0001}".into());
        let s = v.to_string();
        assert_eq!(Value::parse(&s).unwrap(), v);
    }

    #[test]
    fn integer_fidelity_to_2_pow_53() {
        let n = (1u64 << 53) - 1;
        let v = Value::parse(&n.to_string()).unwrap();
        assert_eq!(v.as_u64(), Some(n));
        assert_eq!(v.to_string(), n.to_string());
    }

    #[test]
    fn from_iterator_builds_objects() {
        let v: Value = [("a", Value::from(1u64)), ("b", Value::from("x"))].into_iter().collect();
        assert_eq!(v.to_string(), r#"{"a":1,"b":"x"}"#);
    }
}
