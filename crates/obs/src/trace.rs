//! Route-scoped tracing: flight recorder, deterministic sampling, trace
//! exporters, and fault postmortems.
//!
//! The paper's operator story (§2.1) is that libxbgp *monitors* extension
//! execution and stops misbehaving bytecode. Counting faults (the metrics
//! layer) says how often that happened; this module says *which route,
//! which insertion point, which helper call*. The design invariants:
//!
//! * **Fixed-size events.** A [`TraceEvent`] is a `Copy` struct of scalar
//!   fields; variable-length data (extension names) is interned into a
//!   per-recorder table and referenced by `u16` id, so recording an event
//!   is a handful of stores and never allocates.
//! * **Lock-free by ownership.** Each shard/daemon thread owns its
//!   [`Tracer`] outright and pushes through `&mut self` — a ring-buffer
//!   write with no atomics, no locks, and no sharing. Cross-thread
//!   aggregation happens only at the end of a run, when each thread's
//!   [`TraceDump`] (a plain `Send` value) crosses the existing result
//!   channel and [`TraceDump::merge`] interleaves the timelines.
//! * **Deterministic sampling.** Route sampling is 1-in-N by a per-shard
//!   route counter (`route_seq % N == 0`), not by hashing or randomness:
//!   the same workload traces the same routes on every run, and the
//!   decision is independent of the shard's trace-id base so sharded and
//!   sequential runs sample equivalently.
//! * **Monotonic trace ids.** A trace id is allocated at UPDATE ingest:
//!   `((shard + 1) << TRACE_SHARD_SHIFT) | ingest_seq`. Ids are strictly
//!   increasing within a shard and globally unique across shards, so they
//!   survive the shard mpsc boundary and a merged timeline can still
//!   attribute every event. (Shard indices below 2^13 keep ids under
//!   2^53, exact in the JSON exporters' f64 numbers.)
//! * **Timestamps are virtual.** `ts_ns` is simulator time, pushed in via
//!   [`Tracer::set_now`] at ingest — deterministic across runs and
//!   comparable across shards; the per-recorder `seq` breaks ties.
//!
//! Exporters emit JSONL (one object per line, `"type":"event"` /
//! `"type":"postmortem"`) and the Chrome/Perfetto `trace_event` format
//! (point enter/exit become `B`/`E` duration pairs; everything else an
//! instant event).

use crate::json::Value;

/// Default flight-recorder capacity (events per recorder).
pub const DEFAULT_RING_CAPACITY: usize = 4096;
/// How many trailing events a fault postmortem snapshots.
pub const POSTMORTEM_EVENTS: usize = 32;
/// How many postmortems a recorder retains (oldest dropped first).
pub const MAX_POSTMORTEMS: usize = 64;
/// Bit position of the shard namespace inside a trace id.
pub const TRACE_SHARD_SHIFT: u32 = 40;
/// `point` value for events not tied to an insertion point.
pub const NO_POINT: u8 = u8::MAX;
/// `ext` value for events not tied to an extension.
pub const NO_EXT: u16 = u16::MAX;

/// What a [`TraceEvent`] describes. The `a`/`b` payload fields are
/// kind-specific; the table below is the contract the exporters print.
///
/// | kind          | `a`                         | `b`                      |
/// |---------------|-----------------------------|--------------------------|
/// | `Ingest`      | peer router id              | NLRI count               |
/// | `Decode`      | packed prefix               | 0                        |
/// | `PointEnter`  | chain length                | 0                        |
/// | `PointExit`   | outcome (0 val/1 fb/2 abrt) | 0                        |
/// | `HelperCall`  | helper id                   | latency ns (if profiled) |
/// | `TxnStage`    | op (1 set/2 add/3 rm/4 buf/5 rib) | attr code / 0      |
/// | `TxnCommit`   | staged op count             | 0                        |
/// | `TxnRollback` | staged op count             | 0                        |
/// | `Decision`    | packed prefix               | 1 if best changed        |
/// | `Propagate`   | packed prefix               | peer router id           |
/// | `Fault`       | faulting pc (`u64::MAX` unknown) | error code          |
/// | `Quarantine`  | consecutive faults          | 0                        |
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum TraceKind {
    Ingest = 0,
    Decode = 1,
    PointEnter = 2,
    PointExit = 3,
    HelperCall = 4,
    TxnStage = 5,
    TxnCommit = 6,
    TxnRollback = 7,
    Decision = 8,
    Propagate = 9,
    Fault = 10,
    Quarantine = 11,
}

impl TraceKind {
    /// Every kind, in discriminant order.
    pub const ALL: [TraceKind; 12] = [
        TraceKind::Ingest,
        TraceKind::Decode,
        TraceKind::PointEnter,
        TraceKind::PointExit,
        TraceKind::HelperCall,
        TraceKind::TxnStage,
        TraceKind::TxnCommit,
        TraceKind::TxnRollback,
        TraceKind::Decision,
        TraceKind::Propagate,
        TraceKind::Fault,
        TraceKind::Quarantine,
    ];

    /// Exporter spelling of this kind.
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::Ingest => "ingest",
            TraceKind::Decode => "decode",
            TraceKind::PointEnter => "point_enter",
            TraceKind::PointExit => "point_exit",
            TraceKind::HelperCall => "helper_call",
            TraceKind::TxnStage => "txn_stage",
            TraceKind::TxnCommit => "txn_commit",
            TraceKind::TxnRollback => "txn_rollback",
            TraceKind::Decision => "decision",
            TraceKind::Propagate => "propagate",
            TraceKind::Fault => "fault",
            TraceKind::Quarantine => "quarantine",
        }
    }

    /// Inverse of [`TraceKind::name`], for the JSONL parser.
    pub fn from_name(name: &str) -> Option<TraceKind> {
        TraceKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

/// One fixed-size flight-recorder entry. `Copy`, no heap data: the ring
/// buffer is a flat `Vec<TraceEvent>` and recording never allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Route-scope id allocated at UPDATE ingest; 0 = no scope.
    pub trace_id: u64,
    /// Per-recorder monotonic sequence number (total-pushed order).
    pub seq: u64,
    /// Virtual (simulator) time of the event.
    pub ts_ns: u64,
    pub kind: TraceKind,
    /// Insertion-point index (`InsertionPoint::ALL` order) or [`NO_POINT`].
    pub point: u8,
    /// Interned extension-name id or [`NO_EXT`].
    pub ext: u16,
    /// Kind-specific payload (see [`TraceKind`]).
    pub a: u64,
    /// Kind-specific payload (see [`TraceKind`]).
    pub b: u64,
}

impl TraceEvent {
    /// Shard namespace this event's trace id was allocated in (0 when the
    /// event has no scope).
    pub fn shard(&self) -> u32 {
        (self.trace_id >> TRACE_SHARD_SHIFT).saturating_sub(1) as u32
    }
}

/// Pack a prefix into an event payload: `addr << 8 | len`.
///
/// IPv4-only: the address is a host-order `u32`, mirroring the wire
/// crate's `Ipv4Prefix`. An IPv6 route scope would need a second payload
/// word (or an address-table indirection) — today's daemons never trace
/// one, so the encoding stays a single `u64`.
pub fn pack_prefix(addr: u32, len: u8) -> u64 {
    (u64::from(addr) << 8) | u64::from(len)
}

/// Inverse of [`pack_prefix`].
pub fn unpack_prefix(packed: u64) -> (u32, u8) {
    ((packed >> 8) as u32, packed as u8)
}

/// Tracer configuration. `Copy` so harness spec structs that embed it can
/// stay `Copy` across shard-thread spawns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Trace 1 route in `sample_every`; 0 disables tracing entirely.
    pub sample_every: u64,
    /// Flight-recorder ring capacity (0 = [`DEFAULT_RING_CAPACITY`]).
    pub capacity: usize,
    /// Shard namespace for trace ids (and timeline-merge ordering).
    pub shard: u32,
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig { sample_every: 1, capacity: DEFAULT_RING_CAPACITY, shard: 0 }
    }
}

/// A fault postmortem: the structured record the VMM exports when an
/// extension traps, exhausts its fuel budget, or is quarantined. Carries
/// the trailing flight-recorder events for the offending extension (and
/// the route scope it faulted in), so the record explains *what led up to*
/// the fault, not just that one happened.
#[derive(Debug, Clone, PartialEq)]
pub struct Postmortem {
    /// Name of the offending extension.
    pub extension: String,
    /// Insertion point the fault happened at (`InsertionPoint::ALL` index).
    pub point: u8,
    /// Route scope active when the fault happened (0 = none).
    pub trace_id: u64,
    /// Virtual time of the fault.
    pub ts_ns: u64,
    /// Human-readable fault description (the `VmError` display form).
    pub error: String,
    /// Faulting program counter, when the fault carries one.
    pub pc: Option<u64>,
    /// True when this fault tripped the quarantine circuit breaker.
    pub quarantined: bool,
    /// Up to [`POSTMORTEM_EVENTS`] trailing events involving the
    /// extension or its route scope, oldest first.
    pub events: Vec<TraceEvent>,
}

/// Per-thread flight recorder: a fixed-capacity ring of [`TraceEvent`]s
/// plus the sampling and id-allocation state. Owned by exactly one thread
/// (`&mut self` everywhere) — see the module docs for why that makes it
/// lock-free.
#[derive(Debug)]
pub struct Tracer {
    cfg: TraceConfig,
    ring: Vec<TraceEvent>,
    /// Next write position in `ring` once it is full.
    head: usize,
    /// Total events ever pushed (monotonic `seq` source).
    pushed: u64,
    ext_names: Vec<String>,
    now_ns: u64,
    /// UPDATEs ingested (trace-id allocation).
    ingest_seq: u64,
    /// Routes seen (sampling decisions).
    route_seq: u64,
    current_trace: u64,
    route_active: bool,
    postmortems: Vec<Postmortem>,
}

impl Tracer {
    pub fn new(cfg: TraceConfig) -> Tracer {
        let capacity = if cfg.capacity == 0 {
            DEFAULT_RING_CAPACITY
        } else {
            cfg.capacity
        };
        Tracer {
            cfg: TraceConfig { capacity, ..cfg },
            ring: Vec::with_capacity(capacity),
            head: 0,
            pushed: 0,
            ext_names: Vec::new(),
            now_ns: 0,
            ingest_seq: 0,
            route_seq: 0,
            current_trace: 0,
            route_active: false,
            postmortems: Vec::new(),
        }
    }

    pub fn config(&self) -> TraceConfig {
        self.cfg
    }

    /// Advance the virtual clock (called by the daemon with `ctx.now()`).
    pub fn set_now(&mut self, ns: u64) {
        self.now_ns = ns;
    }

    pub fn now(&self) -> u64 {
        self.now_ns
    }

    /// Intern an extension name, returning its stable event id.
    pub fn intern(&mut self, name: &str) -> u16 {
        if let Some(i) = self.ext_names.iter().position(|n| n == name) {
            return i as u16;
        }
        assert!(self.ext_names.len() < usize::from(NO_EXT), "extension name table full");
        self.ext_names.push(name.to_string());
        (self.ext_names.len() - 1) as u16
    }

    pub fn ext_name(&self, id: u16) -> Option<&str> {
        self.ext_names.get(usize::from(id)).map(String::as_str)
    }

    fn push(&mut self, kind: TraceKind, point: u8, ext: u16, a: u64, b: u64) {
        let ev = TraceEvent {
            trace_id: self.current_trace,
            seq: self.pushed,
            ts_ns: self.now_ns,
            kind,
            point,
            ext,
            a,
            b,
        };
        if self.ring.len() < self.cfg.capacity {
            self.ring.push(ev);
        } else {
            self.ring[self.head] = ev;
            self.head = (self.head + 1) % self.cfg.capacity;
        }
        self.pushed += 1;
    }

    /// Start a new UPDATE scope: allocate the monotonic trace id and
    /// record the ingest event. Returns the id (also retrievable via
    /// [`Tracer::current_trace`]).
    pub fn on_ingest(&mut self, peer: u64, nlri: u64) -> u64 {
        self.ingest_seq += 1;
        self.current_trace =
            ((u64::from(self.cfg.shard) + 1) << TRACE_SHARD_SHIFT) | self.ingest_seq;
        self.route_active = false;
        self.push(TraceKind::Ingest, NO_POINT, NO_EXT, peer, nlri);
        self.current_trace
    }

    /// The trace id of the UPDATE currently being processed (0 if none).
    pub fn current_trace(&self) -> u64 {
        self.current_trace
    }

    /// Start one route of the current UPDATE. Applies the deterministic
    /// 1-in-N sampling decision; when sampled, records the decode event
    /// and arms [`Tracer::route_active`] so per-route events flow until
    /// [`Tracer::end_route`].
    pub fn begin_route(&mut self, packed_prefix: u64) -> bool {
        let n = self.cfg.sample_every;
        let sampled = n > 0 && self.route_seq.is_multiple_of(n);
        self.route_seq += 1;
        self.route_active = sampled;
        if sampled {
            self.push(TraceKind::Decode, NO_POINT, NO_EXT, packed_prefix, 0);
        }
        sampled
    }

    pub fn end_route(&mut self) {
        self.route_active = false;
    }

    /// Is the current route sampled? Gates every per-route event.
    pub fn route_active(&self) -> bool {
        self.route_active
    }

    /// Record an event for the current route; dropped when the route is
    /// not sampled.
    pub fn record(&mut self, kind: TraceKind, point: u8, ext: u16, a: u64, b: u64) {
        if self.route_active {
            self.push(kind, point, ext, a, b);
        }
    }

    /// Record an event regardless of sampling (faults and quarantines:
    /// the flight recorder must never miss the crash itself).
    pub fn record_always(&mut self, kind: TraceKind, point: u8, ext: u16, a: u64, b: u64) {
        self.push(kind, point, ext, a, b);
    }

    /// The ring contents, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        if self.ring.len() < self.cfg.capacity {
            self.ring.clone()
        } else {
            let mut v = Vec::with_capacity(self.ring.len());
            v.extend_from_slice(&self.ring[self.head..]);
            v.extend_from_slice(&self.ring[..self.head]);
            v
        }
    }

    /// Total events ever recorded (≥ ring length once it wraps).
    pub fn total_recorded(&self) -> u64 {
        self.pushed
    }

    /// Build and retain a postmortem for a fault of `extension` (interned
    /// id `ext`): the last [`POSTMORTEM_EVENTS`] ring events involving
    /// that extension or the current route scope.
    #[allow(clippy::too_many_arguments)]
    pub fn postmortem(
        &mut self,
        extension: &str,
        ext: u16,
        point: u8,
        error: &str,
        pc: Option<u64>,
        quarantined: bool,
    ) {
        let scope = self.current_trace;
        let mut events: Vec<TraceEvent> = self
            .events()
            .into_iter()
            .filter(|e| e.ext == ext || (scope != 0 && e.trace_id == scope))
            .collect();
        if events.len() > POSTMORTEM_EVENTS {
            events.drain(..events.len() - POSTMORTEM_EVENTS);
        }
        self.postmortems.push(Postmortem {
            extension: extension.to_string(),
            point,
            trace_id: scope,
            ts_ns: self.now_ns,
            error: error.to_string(),
            pc,
            quarantined,
            events,
        });
        if self.postmortems.len() > MAX_POSTMORTEMS {
            let excess = self.postmortems.len() - MAX_POSTMORTEMS;
            self.postmortems.drain(..excess);
        }
    }

    pub fn postmortems(&self) -> &[Postmortem] {
        &self.postmortems
    }

    /// Extract everything recorded so far as a `Send` dump, leaving the
    /// recorder empty (name table kept, so interned ids stay stable).
    pub fn take_dump(&mut self) -> TraceDump {
        let events = self.events();
        self.ring.clear();
        self.head = 0;
        TraceDump {
            shard: self.cfg.shard,
            events,
            ext_names: self.ext_names.clone(),
            postmortems: std::mem::take(&mut self.postmortems),
        }
    }
}

/// A thread's extracted trace: plain data, `Send`, mergeable.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceDump {
    pub shard: u32,
    pub events: Vec<TraceEvent>,
    /// Extension-name table the events' `ext` ids index into.
    pub ext_names: Vec<String>,
    pub postmortems: Vec<Postmortem>,
}

impl TraceDump {
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.postmortems.is_empty()
    }

    /// Merge per-shard dumps into one timeline, ordered by
    /// `(ts_ns, shard, seq)` — virtual time first (deterministic and
    /// cross-shard comparable), shard then sequence as tie-breakers.
    /// Extension ids are remapped into a shared name table.
    pub fn merge(dumps: Vec<TraceDump>) -> TraceDump {
        let mut names: Vec<String> = Vec::new();
        let mut intern = |n: &str| -> u16 {
            if let Some(i) = names.iter().position(|x| x == n) {
                return i as u16;
            }
            names.push(n.to_string());
            (names.len() - 1) as u16
        };
        let mut keyed: Vec<(u64, u32, u64, TraceEvent)> = Vec::new();
        let mut postmortems: Vec<Postmortem> = Vec::new();
        for dump in dumps {
            let remap: Vec<u16> = dump.ext_names.iter().map(|n| intern(n)).collect();
            let fix = |mut e: TraceEvent| {
                if e.ext != NO_EXT {
                    e.ext = remap.get(usize::from(e.ext)).copied().unwrap_or(NO_EXT);
                }
                e
            };
            for ev in dump.events {
                let ev = fix(ev);
                keyed.push((ev.ts_ns, dump.shard, ev.seq, ev));
            }
            for mut pm in dump.postmortems {
                pm.events = pm.events.into_iter().map(fix).collect();
                postmortems.push(pm);
            }
        }
        keyed.sort_by_key(|(ts, shard, seq, _)| (*ts, *shard, *seq));
        postmortems.sort_by_key(|pm| pm.ts_ns);
        TraceDump {
            shard: 0,
            events: keyed.into_iter().map(|(_, _, _, e)| e).collect(),
            ext_names: names,
            postmortems,
        }
    }

    fn event_json(&self, e: &TraceEvent, point_names: &[&str]) -> Value {
        let point = match usize::from(e.point) {
            p if e.point != NO_POINT && p < point_names.len() => {
                Value::Str(point_names[p].to_string())
            }
            _ if e.point == NO_POINT => Value::Null,
            p => Value::Num(p as f64),
        };
        let ext = match self.ext_names.get(usize::from(e.ext)) {
            Some(n) if e.ext != NO_EXT => Value::Str(n.clone()),
            _ => Value::Null,
        };
        Value::Obj(vec![
            ("type".into(), "event".into()),
            ("trace_id".into(), e.trace_id.into()),
            ("seq".into(), e.seq.into()),
            ("ts_ns".into(), e.ts_ns.into()),
            ("kind".into(), e.kind.name().into()),
            ("point".into(), point),
            ("ext".into(), ext),
            ("a".into(), e.a.into()),
            ("b".into(), e.b.into()),
        ])
    }

    fn postmortem_json(&self, pm: &Postmortem, point_names: &[&str]) -> Value {
        let point = match usize::from(pm.point) {
            p if pm.point != NO_POINT && p < point_names.len() => {
                Value::Str(point_names[p].to_string())
            }
            _ if pm.point == NO_POINT => Value::Null,
            p => Value::Num(p as f64),
        };
        Value::Obj(vec![
            ("type".into(), "postmortem".into()),
            ("extension".into(), pm.extension.clone().into()),
            ("point".into(), point),
            ("trace_id".into(), pm.trace_id.into()),
            ("ts_ns".into(), pm.ts_ns.into()),
            ("error".into(), pm.error.clone().into()),
            ("pc".into(), pm.pc.map_or(Value::Null, Value::from)),
            ("quarantined".into(), pm.quarantined.into()),
            (
                "events".into(),
                Value::Arr(pm.events.iter().map(|e| self.event_json(e, point_names)).collect()),
            ),
        ])
    }

    /// JSONL export: one compact JSON object per line; events first (in
    /// timeline order), then postmortems.
    pub fn to_jsonl(&self, point_names: &[&str]) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&self.event_json(e, point_names).to_string());
            out.push('\n');
        }
        for pm in &self.postmortems {
            out.push_str(&self.postmortem_json(pm, point_names).to_string());
            out.push('\n');
        }
        out
    }

    /// Parse a JSONL export back into a dump — the round-trip proof that
    /// what we emit is machine-readable. Extension names are re-interned
    /// in order of appearance; `shard` is not serialized and comes back 0.
    pub fn from_jsonl(input: &str, point_names: &[&str]) -> Result<TraceDump, String> {
        fn intern(names: &mut Vec<String>, n: &str) -> u16 {
            if let Some(i) = names.iter().position(|x| x == n) {
                return i as u16;
            }
            names.push(n.to_string());
            (names.len() - 1) as u16
        }
        fn parse_point(point_names: &[&str], v: &Value) -> Result<u8, String> {
            match v {
                Value::Null => Ok(NO_POINT),
                Value::Str(s) => point_names
                    .iter()
                    .position(|p| p == s)
                    .map(|p| p as u8)
                    .ok_or_else(|| format!("unknown point `{s}`")),
                Value::Num(n) => Ok(*n as u8),
                _ => Err("bad point".into()),
            }
        }
        fn need(v: &Value, k: &str) -> Result<u64, String> {
            v.get(k).and_then(Value::as_u64).ok_or_else(|| format!("missing field `{k}`"))
        }
        fn parse_event(
            names: &mut Vec<String>,
            point_names: &[&str],
            v: &Value,
        ) -> Result<TraceEvent, String> {
            let kind = v
                .get("kind")
                .and_then(Value::as_str)
                .and_then(TraceKind::from_name)
                .ok_or("bad kind")?;
            let ext = match v.get("ext") {
                Some(Value::Str(n)) => intern(names, n),
                _ => NO_EXT,
            };
            Ok(TraceEvent {
                trace_id: need(v, "trace_id")?,
                seq: need(v, "seq")?,
                ts_ns: need(v, "ts_ns")?,
                kind,
                point: parse_point(point_names, v.get("point").unwrap_or(&Value::Null))?,
                ext,
                a: need(v, "a")?,
                b: need(v, "b")?,
            })
        }
        let mut dump = TraceDump::default();
        for (no, line) in input.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let v = Value::parse(line).map_err(|e| format!("line {}: {e}", no + 1))?;
            match v.get("type").and_then(Value::as_str) {
                Some("event") => {
                    let ev = parse_event(&mut dump.ext_names, point_names, &v)?;
                    dump.events.push(ev);
                }
                Some("postmortem") => {
                    let events = v
                        .get("events")
                        .and_then(Value::as_array)
                        .unwrap_or(&[])
                        .iter()
                        .map(|e| parse_event(&mut dump.ext_names, point_names, e))
                        .collect::<Result<Vec<_>, _>>()?;
                    dump.postmortems.push(Postmortem {
                        extension: v
                            .get("extension")
                            .and_then(Value::as_str)
                            .ok_or("missing extension")?
                            .to_string(),
                        point: parse_point(point_names, v.get("point").unwrap_or(&Value::Null))?,
                        trace_id: need(&v, "trace_id")?,
                        ts_ns: need(&v, "ts_ns")?,
                        error: v
                            .get("error")
                            .and_then(Value::as_str)
                            .ok_or("missing error")?
                            .to_string(),
                        pc: v.get("pc").and_then(Value::as_u64),
                        quarantined: v.get("quarantined").and_then(Value::as_bool).unwrap_or(false),
                        events,
                    });
                }
                other => return Err(format!("line {}: bad type {other:?}", no + 1)),
            }
        }
        Ok(dump)
    }

    /// Chrome/Perfetto `trace_event` export: `PointEnter`/`PointExit`
    /// become `B`/`E` duration pairs; everything else an instant (`i`)
    /// event. `tid` is the shard namespace + 1, so per-shard timelines
    /// render as separate tracks.
    pub fn to_chrome(&self, point_names: &[&str]) -> Value {
        let name_of = |e: &TraceEvent| -> String {
            if e.point != NO_POINT {
                if let Some(p) = point_names.get(usize::from(e.point)) {
                    return format!("{}:{}", e.kind.name(), p);
                }
            }
            e.kind.name().to_string()
        };
        let mut events: Vec<Value> = Vec::with_capacity(self.events.len());
        for e in &self.events {
            let ph = match e.kind {
                TraceKind::PointEnter => "B",
                TraceKind::PointExit => "E",
                _ => "i",
            };
            let mut obj = vec![
                ("name".into(), Value::Str(name_of(e))),
                ("cat".into(), "xbgp".into()),
                ("ph".into(), ph.into()),
                ("ts".into(), Value::Num(e.ts_ns as f64 / 1000.0)),
                ("pid".into(), Value::Num(1.0)),
                ("tid".into(), Value::Num(f64::from(e.shard()) + 1.0)),
            ];
            if ph == "i" {
                obj.push(("s".into(), "t".into()));
            }
            let mut args = vec![
                ("trace_id".into(), Value::from(e.trace_id)),
                ("seq".into(), Value::from(e.seq)),
                ("a".into(), Value::from(e.a)),
                ("b".into(), Value::from(e.b)),
            ];
            if let Some(n) = self.ext_names.get(usize::from(e.ext)) {
                if e.ext != NO_EXT {
                    args.push(("ext".into(), Value::Str(n.clone())));
                }
            }
            obj.push(("args".into(), Value::Obj(args)));
            events.push(Value::Obj(obj));
        }
        Value::Obj(vec![
            ("traceEvents".into(), Value::Arr(events)),
            ("displayTimeUnit".into(), "ms".into()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const POINTS: [&str; 5] = [
        "bgp_receive_message",
        "bgp_inbound_filter",
        "bgp_decision",
        "bgp_outbound_filter",
        "bgp_encode_message",
    ];

    fn tracer(sample: u64, capacity: usize, shard: u32) -> Tracer {
        Tracer::new(TraceConfig { sample_every: sample, capacity, shard })
    }

    #[test]
    fn trace_ids_are_monotonic_and_shard_scoped() {
        let mut t0 = tracer(1, 64, 0);
        let mut t1 = tracer(1, 64, 1);
        let a = t0.on_ingest(9, 1);
        let b = t0.on_ingest(9, 1);
        let c = t1.on_ingest(9, 1);
        assert!(b > a, "monotonic within a shard");
        assert_ne!(a, c, "distinct across shards");
        assert_eq!(TraceEvent { trace_id: c, ..t1.events()[0] }.shard(), 1);
    }

    #[test]
    fn sampling_is_deterministic_one_in_n() {
        let mut t = tracer(4, 256, 0);
        t.on_ingest(1, 12);
        let sampled: Vec<bool> = (0..12).map(|i| t.begin_route(pack_prefix(i, 24))).collect();
        let expect: Vec<bool> = (0..12).map(|i| i % 4 == 0).collect();
        assert_eq!(sampled, expect);
        // Independent of the shard id base: shard 7 samples identically.
        let mut t7 = tracer(4, 256, 7);
        t7.on_ingest(1, 12);
        let sampled7: Vec<bool> = (0..12).map(|i| t7.begin_route(pack_prefix(i, 24))).collect();
        assert_eq!(sampled7, expect);
    }

    #[test]
    fn unsampled_routes_record_nothing() {
        let mut t = tracer(2, 64, 0);
        t.on_ingest(1, 2);
        assert!(t.begin_route(pack_prefix(1, 24)));
        t.record(TraceKind::PointEnter, 1, NO_EXT, 1, 0);
        t.end_route();
        assert!(!t.begin_route(pack_prefix(2, 24)));
        t.record(TraceKind::PointEnter, 1, NO_EXT, 1, 0);
        t.end_route();
        let kinds: Vec<TraceKind> = t.events().iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![TraceKind::Ingest, TraceKind::Decode, TraceKind::PointEnter],
            "the second (unsampled) route contributed nothing"
        );
    }

    #[test]
    fn ring_wraps_and_keeps_the_newest_events_in_order() {
        let mut t = tracer(1, 8, 0);
        t.on_ingest(1, 100);
        t.begin_route(pack_prefix(0, 24));
        for i in 0..100u64 {
            t.record(TraceKind::HelperCall, NO_POINT, NO_EXT, i, 0);
        }
        let evs = t.events();
        assert_eq!(evs.len(), 8, "capacity bounds the ring");
        assert_eq!(t.total_recorded(), 102);
        // The survivors are the newest 8, oldest-first, seq strictly rising.
        let seqs: Vec<u64> = evs.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (94..102).collect::<Vec<u64>>());
        let args: Vec<u64> = evs.iter().map(|e| e.a).collect();
        assert_eq!(args, (92..100).collect::<Vec<u64>>());
    }

    #[test]
    fn merge_orders_across_shards_by_time_then_shard_then_seq() {
        let mut shard0 = tracer(1, 64, 0);
        let mut shard1 = tracer(1, 64, 1);
        shard0.set_now(100);
        shard0.on_ingest(1, 1);
        shard1.set_now(50);
        shard1.on_ingest(2, 1);
        shard1.set_now(100);
        shard1.on_ingest(3, 1);
        shard0.set_now(200);
        shard0.on_ingest(4, 1);
        let merged = TraceDump::merge(vec![shard0.take_dump(), shard1.take_dump()]);
        let order: Vec<(u64, u32)> = merged.events.iter().map(|e| (e.ts_ns, e.shard())).collect();
        assert_eq!(order, vec![(50, 1), (100, 0), (100, 1), (200, 0)]);
        // Ids stay globally unique after the merge.
        let mut ids: Vec<u64> = merged.events.iter().map(|e| e.trace_id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 4);
    }

    #[test]
    fn merge_remaps_extension_ids_into_a_shared_table() {
        let mut a = tracer(1, 64, 0);
        let mut b = tracer(1, 64, 1);
        let ra = a.intern("rov");
        let fb = b.intern("filter");
        let rb = b.intern("rov");
        assert_eq!(ra, 0);
        assert_eq!((fb, rb), (0, 1));
        a.on_ingest(1, 1);
        a.begin_route(1);
        a.record(TraceKind::HelperCall, 1, ra, 21, 0);
        b.on_ingest(1, 1);
        b.begin_route(1);
        b.record(TraceKind::HelperCall, 1, rb, 21, 0);
        let merged = TraceDump::merge(vec![a.take_dump(), b.take_dump()]);
        let helper_exts: Vec<&str> = merged
            .events
            .iter()
            .filter(|e| e.kind == TraceKind::HelperCall)
            .map(|e| merged.ext_names[usize::from(e.ext)].as_str())
            .collect();
        assert_eq!(helper_exts, vec!["rov", "rov"]);
    }

    #[test]
    fn postmortem_carries_trailing_events_for_the_extension() {
        let mut t = tracer(1, 128, 0);
        let ext = t.intern("crasher");
        let other = t.intern("bystander");
        t.on_ingest(1, 1);
        t.begin_route(pack_prefix(7, 24));
        for i in 0..40u64 {
            t.record(TraceKind::HelperCall, 1, ext, i, 0);
        }
        t.record_always(TraceKind::Fault, 1, ext, 3, 1);
        t.postmortem("crasher", ext, 1, "memory fault", Some(3), true);
        // A later fault of another extension must not inherit them.
        let pm = &t.postmortems()[0];
        assert_eq!(pm.extension, "crasher");
        assert_eq!(pm.pc, Some(3));
        assert_eq!(pm.point, 1);
        assert!(pm.quarantined);
        assert_eq!(pm.events.len(), POSTMORTEM_EVENTS);
        assert_eq!(pm.events.last().unwrap().kind, TraceKind::Fault);
        assert!(pm.events.iter().all(|e| e.ext == ext || e.trace_id == pm.trace_id));
        let _ = other;
    }

    #[test]
    fn jsonl_round_trips() {
        let mut t = tracer(1, 64, 0);
        let ext = t.intern("rov");
        t.set_now(1234);
        t.on_ingest(0x0a000001, 2);
        t.begin_route(pack_prefix(0x0a010000, 16));
        t.record(TraceKind::PointEnter, 1, NO_EXT, 1, 0);
        t.record(TraceKind::HelperCall, 1, ext, 21, 55);
        t.record(TraceKind::TxnRollback, 1, ext, 2, 0);
        t.record(TraceKind::PointExit, 1, NO_EXT, 2, 0);
        t.record_always(TraceKind::Fault, 1, ext, 9, 1);
        t.postmortem("rov", ext, 1, "helper 21 failed", Some(9), false);
        let dump = t.take_dump();
        let jsonl = dump.to_jsonl(&POINTS);
        let parsed = TraceDump::from_jsonl(&jsonl, &POINTS).unwrap();
        assert_eq!(parsed.events, dump.events);
        assert_eq!(parsed.postmortems, dump.postmortems);
        assert_eq!(parsed.to_jsonl(&POINTS), jsonl);
    }

    #[test]
    fn chrome_export_is_valid_json_with_balanced_spans() {
        let mut t = tracer(1, 64, 3);
        t.set_now(1000);
        t.on_ingest(1, 1);
        t.begin_route(pack_prefix(1, 24));
        t.record(TraceKind::PointEnter, 1, NO_EXT, 1, 0);
        t.record(TraceKind::PointExit, 1, NO_EXT, 0, 0);
        let dump = t.take_dump();
        let doc = dump.to_chrome(&POINTS);
        let parsed = Value::parse(&doc.to_string()).unwrap();
        let events = parsed.get("traceEvents").and_then(Value::as_array).unwrap();
        let phase = |ph: &str| {
            events
                .iter()
                .filter(|e| e.get("ph").and_then(Value::as_str) == Some(ph))
                .count()
        };
        assert_eq!(phase("B"), 1);
        assert_eq!(phase("E"), 1);
        assert_eq!(phase("i"), 2, "ingest + decode");
        // Shard 3 renders on tid 4.
        assert!(events.iter().all(|e| e.get("tid").and_then(Value::as_u64) == Some(4)));
    }

    #[test]
    fn take_dump_resets_ring_but_keeps_name_table() {
        let mut t = tracer(1, 64, 0);
        let id = t.intern("rov");
        t.on_ingest(1, 1);
        let d1 = t.take_dump();
        assert_eq!(d1.events.len(), 1);
        assert_eq!(t.intern("rov"), id, "ids stable across dumps");
        assert!(t.events().is_empty());
    }

    #[test]
    fn prefix_packing_round_trips() {
        let (addr, len) = unpack_prefix(pack_prefix(0xc0a80000, 16));
        assert_eq!((addr, len), (0xc0a80000, 16));
    }
}
