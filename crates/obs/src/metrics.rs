//! Lock-free metric primitives: counters, gauges, log2-bucket histograms.
//!
//! All types are updated through `&self` with relaxed atomics — safe to
//! share via `Arc` across threads, free of locks on the hot path. Relaxed
//! ordering is deliberate: metrics need eventual visibility, not
//! synchronisation edges.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Number of histogram buckets. Bucket `i` (for `i ≥ 1`) counts values
/// needing exactly `i` significant bits, i.e. `v ∈ [2^(i-1), 2^i)`;
/// bucket 0 counts zeros; the last bucket absorbs everything ≥ 2^62.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn new() -> Counter {
        Counter::default()
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A value that can go up and down (RIB sizes, session counts).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    pub fn new() -> Gauge {
        Gauge::default()
    }

    #[inline]
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Log2-bucket histogram for latency-style values (typically nanoseconds).
///
/// One atomic `fetch_add` per observation; `count` and `sum` are tracked so
/// exporters can derive averages exactly while quantiles come from the
/// bucket boundaries (within 2× of the true value, which is what a log2
/// layout buys).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Index of the bucket `value` lands in: the number of significant
    /// bits, capped to the last bucket.
    #[inline]
    pub fn bucket_index(value: u64) -> usize {
        ((64 - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }

    /// Inclusive upper bound of bucket `i`; the last bucket is unbounded
    /// (`u64::MAX` stands in for +Inf).
    pub fn bucket_upper_bound(i: usize) -> u64 {
        if i >= HISTOGRAM_BUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    #[inline]
    pub fn observe(&self, value: u64) {
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// Why two snapshots refused to merge. Carries the metric name when the
/// registry layer knows it (ad-hoc merges leave it empty).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeError {
    /// The two histograms have different bucket layouts; summing them
    /// pairwise would silently truncate to the shorter one.
    BucketCountMismatch {
        metric: String,
        left: usize,
        right: usize,
    },
    /// A histogram claims observations but carries no buckets to hold
    /// them — a malformed (e.g. mis-parsed) snapshot.
    EmptyHistogram { metric: String },
}

impl MergeError {
    /// Attach the metric name (the registry knows it, callers of the bare
    /// snapshot merge usually don't).
    pub fn with_metric(mut self, name: &str) -> MergeError {
        match &mut self {
            MergeError::BucketCountMismatch { metric, .. }
            | MergeError::EmptyHistogram { metric } => {
                if metric.is_empty() {
                    *metric = name.to_string();
                }
            }
        }
        self
    }

    fn metric(&self) -> &str {
        match self {
            MergeError::BucketCountMismatch { metric, .. }
            | MergeError::EmptyHistogram { metric } => metric,
        }
    }
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = if self.metric().is_empty() {
            "<histogram>"
        } else {
            self.metric()
        };
        match self {
            MergeError::BucketCountMismatch { left, right, .. } => {
                write!(f, "cannot merge `{name}`: bucket count mismatch ({left} vs {right})")
            }
            MergeError::EmptyHistogram { .. } => {
                write!(f, "cannot merge `{name}`: non-empty histogram has no buckets")
            }
        }
    }
}

impl std::error::Error for MergeError {}

/// Point-in-time copy of a [`Histogram`].
///
/// `buckets` is a `Vec` rather than a fixed array so snapshots from other
/// layouts (or parsed from an export) are representable — which is exactly
/// why [`HistogramSnapshot::merge`] must check layouts instead of zipping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub buckets: Vec<u64>,
    pub count: u64,
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot { buckets: vec![0; HISTOGRAM_BUCKETS], count: 0, sum: 0 }
    }
}

impl HistogramSnapshot {
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket holding the q-quantile observation
    /// (`0.0 ≤ q ≤ 1.0`). Approximate by construction: within one log2
    /// bucket of the true quantile.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Histogram::bucket_upper_bound(i);
            }
        }
        Histogram::bucket_upper_bound(HISTOGRAM_BUCKETS - 1)
    }

    /// An empty shell: no buckets, no observations. Merging adopts the
    /// other side's layout; claiming observations without buckets is the
    /// malformed state [`MergeError::EmptyHistogram`] rejects.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty() && self.count == 0 && self.sum == 0
    }

    /// Merge another snapshot into this one (used when aggregating the
    /// same metric across label sets or shards). Bucket layouts must
    /// match — a mismatch is an error, never a silent zip-truncation. An
    /// all-empty side (no buckets, no observations) merges as a no-op /
    /// layout adoption.
    pub fn merge(&mut self, other: &HistogramSnapshot) -> Result<(), MergeError> {
        let malformed = |s: &HistogramSnapshot| s.buckets.is_empty() && (s.count > 0 || s.sum > 0);
        if malformed(self) || malformed(other) {
            return Err(MergeError::EmptyHistogram { metric: String::new() });
        }
        if other.is_empty() {
            return Ok(());
        }
        if self.is_empty() {
            *self = other.clone();
            return Ok(());
        }
        if self.buckets.len() != other.buckets.len() {
            return Err(MergeError::BucketCountMismatch {
                metric: String::new(),
                left: self.buckets.len(),
                right: other.buckets.len(),
            });
        }
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);

        let g = Gauge::new();
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn bucket_index_is_log2() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(7), 3);
        assert_eq!(Histogram::bucket_index(8), 4);
        assert_eq!(Histogram::bucket_index(1023), 10);
        assert_eq!(Histogram::bucket_index(1024), 11);
        assert_eq!(Histogram::bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn bucket_bounds_cover_indices() {
        // Every value must fall in a bucket whose upper bound contains it.
        for v in [0u64, 1, 2, 3, 15, 16, 1000, 1 << 20, u64::MAX] {
            let i = Histogram::bucket_index(v);
            assert!(v <= Histogram::bucket_upper_bound(i), "v={v} i={i}");
            if i > 0 {
                assert!(v > Histogram::bucket_upper_bound(i - 1), "v={v} i={i}");
            }
        }
    }

    #[test]
    fn histogram_observe_and_snapshot() {
        let h = Histogram::new();
        for v in [0u64, 1, 3, 3, 100, 5000] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 5107);
        assert_eq!(s.buckets[0], 1); // the zero
        assert_eq!(s.buckets[1], 1); // 1
        assert_eq!(s.buckets[2], 2); // 3, 3
        assert_eq!(s.buckets[7], 1); // 100 ∈ [64,128)
        assert_eq!(s.buckets[13], 1); // 5000 ∈ [4096,8192)
        assert!((s.mean() - 5107.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn quantile_tracks_distribution() {
        let h = Histogram::new();
        for _ in 0..90 {
            h.observe(10); // bucket 4, upper bound 15
        }
        for _ in 0..10 {
            h.observe(1000); // bucket 10, upper bound 1023
        }
        let s = h.snapshot();
        assert_eq!(s.quantile(0.5), 15);
        assert_eq!(s.quantile(0.99), 1023);
        assert_eq!(s.quantile(0.0), 15);
    }

    #[test]
    fn snapshot_merge_adds_fields() {
        let a = Histogram::new();
        a.observe(5);
        let b = Histogram::new();
        b.observe(100);
        b.observe(7);
        let mut sa = a.snapshot();
        sa.merge(&b.snapshot()).unwrap();
        assert_eq!(sa.count, 3);
        assert_eq!(sa.sum, 112);
    }

    #[test]
    fn merge_rejects_mismatched_bucket_counts() {
        let mut a = HistogramSnapshot { buckets: vec![1; 64], count: 64, sum: 64 };
        let b = HistogramSnapshot { buckets: vec![1; 32], count: 32, sum: 32 };
        let err = a.merge(&b).unwrap_err();
        assert_eq!(
            err,
            MergeError::BucketCountMismatch { metric: String::new(), left: 64, right: 32 }
        );
        // Nothing was truncated-into: the receiver is untouched.
        assert_eq!(a.count, 64);
        let named = err.with_metric("xbgp_hook_ns");
        assert!(named.to_string().contains("xbgp_hook_ns"));
    }

    #[test]
    fn merge_rejects_malformed_empty_histograms() {
        let mut a = HistogramSnapshot::default();
        let claims_without_buckets = HistogramSnapshot { buckets: vec![], count: 5, sum: 10 };
        assert_eq!(
            a.merge(&claims_without_buckets).unwrap_err(),
            MergeError::EmptyHistogram { metric: String::new() }
        );
    }

    #[test]
    fn merge_adopts_layout_from_a_truly_empty_side() {
        let mut empty = HistogramSnapshot { buckets: vec![], count: 0, sum: 0 };
        let h = Histogram::new();
        h.observe(9);
        empty.merge(&h.snapshot()).unwrap();
        assert_eq!(empty.count, 1);
        assert_eq!(empty.buckets.len(), HISTOGRAM_BUCKETS);
        // And the mirror image: merging empty into populated is a no-op.
        let mut populated = h.snapshot();
        populated
            .merge(&HistogramSnapshot { buckets: vec![], count: 0, sum: 0 })
            .unwrap();
        assert_eq!(populated.count, 1);
    }
}
