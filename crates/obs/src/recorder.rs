//! The `Recorder` trait: how instrumented components hand metric events to
//! a host-chosen backend.
//!
//! Components that embed observability accept a `&dyn Recorder` (or store
//! a `Box<dyn Recorder>`). The default [`NoopRecorder`] has empty method
//! bodies — with the provided default methods every call inlines to
//! nothing, so uninstrumented deployments pay zero cost beyond the virtual
//! dispatch their host opted into. [`RegistryRecorder`] forwards events
//! into a [`Registry`] for scraping.

use crate::registry::Registry;
use std::sync::Arc;

pub trait Recorder: Send + Sync {
    /// Add `delta` to the counter `name{labels}`.
    #[inline]
    fn counter_add(&self, name: &str, labels: &[(&str, &str)], delta: u64) {
        let _ = (name, labels, delta);
    }

    /// Set the gauge `name{labels}`.
    #[inline]
    fn gauge_set(&self, name: &str, labels: &[(&str, &str)], value: i64) {
        let _ = (name, labels, value);
    }

    /// Record one observation into the histogram `name{labels}`.
    #[inline]
    fn observe(&self, name: &str, labels: &[(&str, &str)], value: u64) {
        let _ = (name, labels, value);
    }
}

/// Discards every event; the zero-cost default.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

/// Forwards events into a [`Registry`].
///
/// Each event performs a registry lookup, so this is meant for warm paths
/// (per-message, per-run), not per-instruction loops — those accumulate
/// locally and flush once per run.
pub struct RegistryRecorder {
    registry: Arc<Registry>,
}

impl RegistryRecorder {
    pub fn new(registry: Arc<Registry>) -> RegistryRecorder {
        RegistryRecorder { registry }
    }

    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }
}

impl Recorder for RegistryRecorder {
    fn counter_add(&self, name: &str, labels: &[(&str, &str)], delta: u64) {
        self.registry.counter(name, labels).add(delta);
    }

    fn gauge_set(&self, name: &str, labels: &[(&str, &str)], value: i64) {
        self.registry.gauge(name, labels).set(value);
    }

    fn observe(&self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.registry.histogram(name, labels).observe(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_recorder_accepts_everything() {
        let r = NoopRecorder;
        r.counter_add("a", &[], 1);
        r.gauge_set("b", &[("x", "y")], -5);
        r.observe("c", &[], 100);
    }

    #[test]
    fn registry_recorder_feeds_registry() {
        let reg = Arc::new(Registry::new());
        let r = RegistryRecorder::new(Arc::clone(&reg));
        r.counter_add("runs", &[("point", "p")], 2);
        r.counter_add("runs", &[("point", "p")], 1);
        r.gauge_set("rib", &[], 10);
        r.observe("lat", &[], 100);

        let s = reg.snapshot();
        assert_eq!(s.counter_value("runs", &[("point", "p")]), Some(3));
        assert_eq!(s.gauge_value("rib", &[]), Some(10));
        assert_eq!(s.histogram_value("lat", &[]).unwrap().count, 1);
    }

    #[test]
    fn recorder_is_object_safe() {
        let boxed: Box<dyn Recorder> = Box::new(NoopRecorder);
        boxed.counter_add("x", &[], 1);
    }
}
