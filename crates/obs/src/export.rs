//! Exporters: Prometheus text exposition format and JSON documents.
//!
//! `to_prometheus` emits the format a Prometheus server scrapes
//! (`# TYPE` comments, `name{labels} value` samples, cumulative
//! `_bucket`/`_sum`/`_count` series for histograms). `parse_prometheus` is
//! the inverse for samples — enough to round-trip exporter output in
//! tests and to let external tools consume dumps without a Prometheus
//! dependency. `to_json` renders the same snapshot as a JSON document via
//! [`crate::json`].

use crate::json::Value;
use crate::metrics::Histogram;
use crate::registry::{Metric, MetricValue, Snapshot};

/// Render a snapshot in the Prometheus text exposition format.
pub fn to_prometheus(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    let mut last_name: Option<&str> = None;
    for m in &snapshot.metrics {
        let type_name = match m.value {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
        };
        if last_name != Some(m.name.as_str()) {
            out.push_str(&format!("# TYPE {} {}\n", m.name, type_name));
            last_name = Some(m.name.as_str());
        }
        match &m.value {
            MetricValue::Counter(v) => {
                out.push_str(&format!("{}{} {}\n", m.name, render_labels(&m.labels, None), v));
            }
            MetricValue::Gauge(v) => {
                out.push_str(&format!("{}{} {}\n", m.name, render_labels(&m.labels, None), v));
            }
            MetricValue::Histogram(h) => {
                let last = h.buckets.len().max(1) - 1;
                let mut cumulative = 0u64;
                for (i, &c) in h.buckets.iter().enumerate() {
                    cumulative += c;
                    // Empty buckets below the data are skipped to keep
                    // dumps small; cumulative semantics are preserved.
                    if c == 0 && i != last {
                        continue;
                    }
                    let le = if i == last {
                        "+Inf".to_string()
                    } else {
                        Histogram::bucket_upper_bound(i).to_string()
                    };
                    out.push_str(&format!(
                        "{}_bucket{} {}\n",
                        m.name,
                        render_labels(&m.labels, Some(&le)),
                        cumulative
                    ));
                }
                out.push_str(&format!(
                    "{}_sum{} {}\n",
                    m.name,
                    render_labels(&m.labels, None),
                    h.sum
                ));
                out.push_str(&format!(
                    "{}_count{} {}\n",
                    m.name,
                    render_labels(&m.labels, None),
                    h.count
                ));
            }
        }
    }
    out
}

fn render_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", k, escape_label_value(v)))
        .collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

fn escape_label_value(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// One `name{labels} value` sample parsed back from exposition text.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    pub name: String,
    pub labels: Vec<(String, String)>,
    pub value: f64,
}

/// Parse Prometheus exposition text into samples. `# `-prefixed comment
/// lines and blank lines are skipped; malformed sample lines are errors.
pub fn parse_prometheus(text: &str) -> Result<Vec<PromSample>, String> {
    let mut samples = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        samples.push(parse_sample_line(line).map_err(|e| format!("line {}: {e}", lineno + 1))?);
    }
    Ok(samples)
}

fn parse_sample_line(line: &str) -> Result<PromSample, String> {
    // The name ends at the label block or the first whitespace. The label
    // block must then be scanned quote- and escape-aware: label values may
    // legitimately contain `{`, `}`, spaces, or escaped quotes, so a
    // positional `find('}')` would split the line inside a value.
    let mut name_end = line.len();
    let mut label_open = None;
    for (i, c) in line.char_indices() {
        if c == '{' || c.is_whitespace() {
            name_end = i;
            label_open = (c == '{').then_some(i);
            break;
        }
    }
    let name = &line[..name_end];
    let (labels, value_text) = match label_open {
        None => (Vec::new(), line[name_end..].trim()),
        Some(open) => {
            let mut close = None;
            let mut in_quotes = false;
            let mut escaped = false;
            for (i, c) in line[open + 1..].char_indices() {
                if escaped {
                    escaped = false;
                    continue;
                }
                match c {
                    '\\' if in_quotes => escaped = true,
                    '"' => in_quotes = !in_quotes,
                    '}' if !in_quotes => {
                        close = Some(open + 1 + i);
                        break;
                    }
                    _ => {}
                }
            }
            let close = close.ok_or("unterminated label block")?;
            (parse_labels(line[open + 1..close].trim())?, line[close + 1..].trim())
        }
    };
    if value_text.is_empty() {
        return Err("missing value".to_string());
    }
    let value: f64 = value_text.parse().map_err(|_| format!("bad value `{value_text}`"))?;
    if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':') {
        return Err(format!("bad metric name `{name}`"));
    }
    Ok(PromSample { name: name.to_string(), labels, value })
}

fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = body;
    while !rest.is_empty() {
        let eq = rest.find('=').ok_or("label without `=`")?;
        let key = rest[..eq].trim().to_string();
        rest = &rest[eq + 1..];
        if !rest.starts_with('"') {
            return Err("label value not quoted".to_string());
        }
        rest = &rest[1..];
        let mut value = String::new();
        let mut chars = rest.char_indices();
        let mut consumed = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, e)) => value.push(e),
                    None => return Err("dangling escape".to_string()),
                },
                '"' => {
                    consumed = Some(i + 1);
                    break;
                }
                c => value.push(c),
            }
        }
        let consumed = consumed.ok_or("unterminated label value")?;
        labels.push((key, value));
        rest = rest[consumed..].trim_start();
        if let Some(stripped) = rest.strip_prefix(',') {
            rest = stripped.trim_start();
        } else if !rest.is_empty() {
            return Err(format!("junk after label value: `{rest}`"));
        }
    }
    Ok(labels)
}

/// Render a snapshot as a JSON document (array of metric objects).
pub fn to_json(snapshot: &Snapshot) -> Value {
    Value::Arr(snapshot.metrics.iter().map(metric_to_json).collect())
}

fn metric_to_json(m: &Metric) -> Value {
    let labels =
        Value::Obj(m.labels.iter().map(|(k, v)| (k.clone(), Value::Str(v.clone()))).collect());
    let mut members =
        vec![("name".to_string(), Value::Str(m.name.clone())), ("labels".to_string(), labels)];
    match &m.value {
        MetricValue::Counter(v) => {
            members.push(("type".to_string(), Value::from("counter")));
            members.push(("value".to_string(), Value::from(*v)));
        }
        MetricValue::Gauge(v) => {
            members.push(("type".to_string(), Value::from("gauge")));
            members.push(("value".to_string(), Value::from(*v)));
        }
        MetricValue::Histogram(h) => {
            members.push(("type".to_string(), Value::from("histogram")));
            members.push(("count".to_string(), Value::from(h.count)));
            members.push(("sum".to_string(), Value::from(h.sum)));
            members.push(("mean_ns".to_string(), Value::from(h.mean())));
            members.push(("p50".to_string(), Value::from(h.quantile(0.5))));
            members.push(("p99".to_string(), Value::from(h.quantile(0.99))));
            // Sparse bucket encoding: [bucket_upper_bound, count] pairs.
            let buckets: Vec<Value> = h
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(i, &c)| {
                    Value::Arr(vec![Value::from(Histogram::bucket_upper_bound(i)), Value::from(c)])
                })
                .collect();
            members.push(("buckets".to_string(), Value::Arr(buckets)));
        }
    }
    Value::Obj(members)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Histogram;

    fn sample_snapshot() -> Snapshot {
        let mut s = Snapshot::new();
        s.push_counter(
            "xbgp_vmm_runs_total",
            &[("point", "bgp_decision"), ("daemon", "bgp-fir")],
            42,
        );
        s.push_gauge("bgp_rib_size", &[("daemon", "bgp-wren")], 120_000);
        let h = Histogram::new();
        h.observe(100);
        h.observe(3000);
        h.observe(3100);
        s.push_histogram("xbgp_vmm_run_ns", &[("point", "bgp_inbound_filter")], h.snapshot());
        s
    }

    #[test]
    fn prometheus_rendering_shape() {
        let text = to_prometheus(&sample_snapshot());
        assert!(text.contains("# TYPE xbgp_vmm_runs_total counter"));
        assert!(text.contains("xbgp_vmm_runs_total{point=\"bgp_decision\",daemon=\"bgp-fir\"} 42"));
        assert!(text.contains("# TYPE bgp_rib_size gauge"));
        assert!(text.contains("bgp_rib_size{daemon=\"bgp-wren\"} 120000"));
        assert!(text.contains("# TYPE xbgp_vmm_run_ns histogram"));
        // 100 → bucket upper bound 127; the two 3xxx values land in
        // [2048,4096) → cumulative 3 at le=4095.
        assert!(text.contains("xbgp_vmm_run_ns_bucket{point=\"bgp_inbound_filter\",le=\"127\"} 1"));
        assert!(text.contains("xbgp_vmm_run_ns_bucket{point=\"bgp_inbound_filter\",le=\"4095\"} 3"));
        assert!(text.contains("xbgp_vmm_run_ns_bucket{point=\"bgp_inbound_filter\",le=\"+Inf\"} 3"));
        assert!(text.contains("xbgp_vmm_run_ns_sum{point=\"bgp_inbound_filter\"} 6200"));
        assert!(text.contains("xbgp_vmm_run_ns_count{point=\"bgp_inbound_filter\"} 3"));
    }

    #[test]
    fn prometheus_round_trips_through_parser() {
        let snap = sample_snapshot();
        let text = to_prometheus(&snap);
        let samples = parse_prometheus(&text).unwrap();

        // Counter and gauge come back exactly.
        let counter = samples.iter().find(|s| s.name == "xbgp_vmm_runs_total").unwrap();
        assert_eq!(counter.value, 42.0);
        assert_eq!(
            counter.labels,
            vec![
                ("point".to_string(), "bgp_decision".to_string()),
                ("daemon".to_string(), "bgp-fir".to_string())
            ]
        );
        let gauge = samples.iter().find(|s| s.name == "bgp_rib_size").unwrap();
        assert_eq!(gauge.value, 120_000.0);

        // Histogram series: _count/_sum match, +Inf bucket equals count.
        let count = samples.iter().find(|s| s.name == "xbgp_vmm_run_ns_count").unwrap();
        assert_eq!(count.value, 3.0);
        let sum = samples.iter().find(|s| s.name == "xbgp_vmm_run_ns_sum").unwrap();
        assert_eq!(sum.value, 6200.0);
        let inf = samples
            .iter()
            .find(|s| {
                s.name == "xbgp_vmm_run_ns_bucket"
                    && s.labels.iter().any(|(k, v)| k == "le" && v == "+Inf")
            })
            .unwrap();
        assert_eq!(inf.value, 3.0);
    }

    #[test]
    fn parser_handles_escapes_and_rejects_junk() {
        let samples = parse_prometheus("m{k=\"a\\\"b\\\\c\\nd\"} 1\n# HELP m x\n\nm2 5\n").unwrap();
        assert_eq!(samples[0].labels[0].1, "a\"b\\c\nd");
        assert_eq!(samples[1], PromSample { name: "m2".into(), labels: vec![], value: 5.0 });

        assert!(parse_prometheus("not a metric line").is_err());
        assert!(parse_prometheus("m{k=unquoted} 1").is_err());
        assert!(parse_prometheus("m 1 2 3").is_err());
        assert!(parse_prometheus("m{k=\"unterminated} 1").is_err());
    }

    #[test]
    fn hostile_label_values_round_trip() {
        // Values containing the structural characters the old parser
        // split on positionally: `}`, `{`, spaces — plus the characters
        // the exposition format requires escaping.
        let hostile = ["a}b", "{c}", "d e f", "g\"h", "i\\j", "k\nl", "}{\"\\\n"];
        let mut snap = Snapshot::new();
        for (i, v) in hostile.iter().enumerate() {
            snap.push_counter("m", &[("v", v), ("i", &i.to_string())], i as u64);
        }
        let text = to_prometheus(&snap);
        let samples = parse_prometheus(&text).unwrap();
        assert_eq!(samples.len(), hostile.len());
        for (i, v) in hostile.iter().enumerate() {
            assert_eq!(
                samples[i].labels,
                vec![("v".to_string(), v.to_string()), ("i".to_string(), i.to_string())],
                "value {v:?} must survive the round trip"
            );
            assert_eq!(samples[i].value, i as f64);
        }
    }

    #[test]
    fn json_export_matches_snapshot() {
        let doc = to_json(&sample_snapshot());
        let arr = doc.as_array().unwrap();
        assert_eq!(arr.len(), 3);
        let counter = &arr[0];
        assert_eq!(counter.get("name").unwrap().as_str(), Some("xbgp_vmm_runs_total"));
        assert_eq!(counter.get("type").unwrap().as_str(), Some("counter"));
        assert_eq!(counter.get("value").unwrap().as_u64(), Some(42));
        assert_eq!(counter.get("labels").unwrap().get("daemon").unwrap().as_str(), Some("bgp-fir"));
        let hist = &arr[2];
        assert_eq!(hist.get("count").unwrap().as_u64(), Some(3));
        assert_eq!(hist.get("sum").unwrap().as_u64(), Some(6200));
        // Round-trip through the JSON parser too.
        let reparsed = Value::parse(&doc.to_string()).unwrap();
        assert_eq!(reparsed, doc);
    }
}
