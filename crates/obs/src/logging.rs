//! Level-filtered logging facade with a host-pluggable sink.
//!
//! Replaces the ad-hoc `eprintln!` calls that used to be scattered across
//! the workspace. Call sites use the [`error!`](crate::error!)/
//! [`warn!`](crate::warn!)/[`info!`](crate::info!)/[`debug!`](crate::debug!)/
//! [`trace!`](crate::trace!) macros; hosts pick the backend with
//! [`set_sink`] (default: stderr) and the verbosity with [`set_level`]
//! (default: [`Level::Info`]). The level check is one relaxed atomic load,
//! performed at the macro callsite *before* `format_args!` materializes —
//! a filtered-out record costs the load and a predictable branch, never
//! argument formatting or a `Display` walk of the operands.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::RwLock;

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    Error = 1,
    Warn = 2,
    Info = 3,
    Debug = 4,
    Trace = 5,
}

impl Level {
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
            Level::Trace => "TRACE",
        }
    }

    pub fn from_str_loose(s: &str) -> Option<Level> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => None,
        }
    }
}

/// Where log records go. Implementations must tolerate concurrent calls.
pub trait LogSink: Send + Sync {
    fn log(&self, level: Level, target: &str, message: &str);
}

/// The default sink: `[LEVEL target] message` on stderr.
struct StderrSink;

impl LogSink for StderrSink {
    fn log(&self, level: Level, target: &str, message: &str) {
        eprintln!("[{} {}] {}", level.as_str(), target, message);
    }
}

static MAX_LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);
static SINK: RwLock<Option<Box<dyn LogSink>>> = RwLock::new(None);

/// Set the most verbose level that will be emitted.
pub fn set_level(level: Level) {
    MAX_LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Current verbosity ceiling.
pub fn max_level() -> Level {
    match MAX_LEVEL.load(Ordering::Relaxed) {
        1 => Level::Error,
        2 => Level::Warn,
        3 => Level::Info,
        4 => Level::Debug,
        _ => Level::Trace,
    }
}

/// Whether a record at `level` would currently be emitted.
#[inline]
pub fn enabled(level: Level) -> bool {
    level as u8 <= MAX_LEVEL.load(Ordering::Relaxed)
}

/// Install a custom sink (replacing the default stderr sink).
pub fn set_sink(sink: Box<dyn LogSink>) {
    *SINK.write().unwrap() = Some(sink);
}

/// Restore the default stderr sink.
pub fn reset_sink() {
    *SINK.write().unwrap() = None;
}

/// Emit a record that already passed the level check. Prefer the macros,
/// which perform that check before `format_args!` materializes — calling
/// this directly formats unconditionally.
pub fn log(level: Level, target: &str, args: std::fmt::Arguments<'_>) {
    if !enabled(level) {
        return;
    }
    let message = args.to_string();
    let guard = SINK.read().unwrap();
    match guard.as_ref() {
        Some(sink) => sink.log(level, target, &message),
        None => StderrSink.log(level, target, &message),
    }
}

/// Shared macro body: the level check happens *here*, at the callsite,
/// so a filtered record never builds its `format_args!` (whose captured
/// operands would otherwise be evaluated and walked by the formatter).
#[doc(hidden)]
#[macro_export]
macro_rules! __log_at {
    ($level:expr, $($arg:tt)*) => {
        if $crate::logging::enabled($level) {
            $crate::logging::log($level, module_path!(), format_args!($($arg)*));
        }
    };
}

#[macro_export]
macro_rules! error {
    ($($arg:tt)*) => {
        $crate::__log_at!($crate::logging::Level::Error, $($arg)*)
    };
}

#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => {
        $crate::__log_at!($crate::logging::Level::Warn, $($arg)*)
    };
}

#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => {
        $crate::__log_at!($crate::logging::Level::Info, $($arg)*)
    };
}

#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => {
        $crate::__log_at!($crate::logging::Level::Debug, $($arg)*)
    };
}

#[macro_export]
macro_rules! trace {
    ($($arg:tt)*) => {
        $crate::__log_at!($crate::logging::Level::Trace, $($arg)*)
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    struct CaptureSink(Arc<Mutex<Vec<(Level, String, String)>>>);

    impl LogSink for CaptureSink {
        fn log(&self, level: Level, target: &str, message: &str) {
            self.0.lock().unwrap().push((level, target.to_string(), message.to_string()));
        }
    }

    // One test owns the global sink/level state; parallel test runners
    // would interleave otherwise.
    #[test]
    fn facade_filters_formats_and_routes() {
        let records = Arc::new(Mutex::new(Vec::new()));
        set_sink(Box::new(CaptureSink(Arc::clone(&records))));
        set_level(Level::Info);

        assert!(enabled(Level::Error));
        assert!(enabled(Level::Info));
        assert!(!enabled(Level::Debug));

        crate::info!("hello {}", 42);
        crate::debug!("must be filtered");
        crate::error!("bad: {}", "thing");

        set_level(Level::Trace);
        crate::trace!("now visible");

        let got = records.lock().unwrap().clone();
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].0, Level::Info);
        assert_eq!(got[0].2, "hello 42");
        assert!(got[0].1.contains("logging"));
        assert_eq!(got[1].0, Level::Error);
        assert_eq!(got[1].2, "bad: thing");
        assert_eq!(got[2].0, Level::Trace);

        // Restore defaults for any other test in this process.
        set_level(Level::Info);
        reset_sink();
    }

    #[test]
    fn filtered_records_never_evaluate_their_arguments() {
        // `expensive` panics if called; the macro must short-circuit
        // before `format_args!` captures (and formats) the operand.
        fn expensive() -> String {
            panic!("argument was formatted for a filtered-out record");
        }
        // Global level defaults to Info (tests that change it restore it).
        assert!(!enabled(Level::Trace));
        crate::trace!("dropped: {}", expensive());
    }

    #[test]
    fn level_parsing() {
        assert_eq!(Level::from_str_loose("WARN"), Some(Level::Warn));
        assert_eq!(Level::from_str_loose("debug"), Some(Level::Debug));
        assert_eq!(Level::from_str_loose("nope"), None);
        assert_eq!(Level::Error.as_str(), "ERROR");
    }
}
