//! # xbgp-obs — cross-stack observability for the xBGP reproduction
//!
//! The paper's safety story is that libxbgp *monitors* extension execution
//! (§2.1: terminate-on-fault, fall back to native). Monitoring needs
//! first-class telemetry, so this crate provides the substrate every layer
//! reports through:
//!
//! * **Metrics** ([`Counter`], [`Gauge`], [`Histogram`]): lock-free atomic
//!   primitives. Histograms use log2 buckets — one `fetch_add` per
//!   observation, constant memory, good-enough latency quantiles.
//! * **Registry** ([`Registry`]): name+labels → metric handles. The lock is
//!   taken only at registration and snapshot time; the hot path touches
//!   pre-registered `Arc` handles only.
//! * **Snapshots** ([`Snapshot`]): a point-in-time copy of every metric,
//!   buildable either from a registry or directly from ad-hoc counters
//!   (how the VMM exports without paying registry costs per run).
//! * **Exporters** ([`export::to_prometheus`], [`export::to_json`]): the
//!   Prometheus text exposition format (with a line parser for round-trip
//!   tests) and a JSON document.
//! * **Recorder** ([`Recorder`]): the host-pluggable event interface with a
//!   zero-cost no-op default ([`NoopRecorder`]).
//! * **Span timers** ([`SpanTimer`]): scoped RAII timers feeding histograms.
//! * **Logging facade** ([`logging`], [`error!`], [`warn!`], [`info!`],
//!   [`debug!`], [`trace!`]): level-filtered, host-pluggable sink replacing
//!   the ad-hoc `eprintln!` calls that used to be scattered across crates.
//! * **JSON codec** ([`json`]): a dependency-free parser/writer also used
//!   by manifests and scenario files (the build environment has no
//!   registry access, so serde is not available; see `shims/README.md`).
//! * **Tracing** ([`trace`]): route-scoped flight recorder — per-thread
//!   ring buffers of fixed-size [`trace::TraceEvent`]s, deterministic
//!   1-in-N route sampling, JSONL/Chrome exporters, and fault
//!   [`trace::Postmortem`] records.

pub mod export;
pub mod json;
pub mod logging;
pub mod metrics;
pub mod recorder;
pub mod registry;
pub mod span;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MergeError, HISTOGRAM_BUCKETS};
pub use recorder::{NoopRecorder, Recorder, RegistryRecorder};
pub use registry::{Metric, MetricValue, Registry, Snapshot};
pub use span::SpanTimer;
pub use trace::{Postmortem, TraceConfig, TraceDump, TraceEvent, TraceKind, Tracer};
