//! Property tests for the trace exporters: everything we emit must parse
//! back to an equivalent dump (JSONL) or to structurally valid Chrome
//! `trace_event` JSON. Random op sequences drive a real [`Tracer`] so the
//! generated dumps exercise sampling, ring wraparound, interning, and
//! postmortems together.

use proptest::prelude::*;
use xbgp_obs::json::Value;
use xbgp_obs::trace::{TraceConfig, TraceDump, TraceKind, Tracer, NO_EXT, NO_POINT};

const POINTS: [&str; 5] = [
    "bgp_receive_message",
    "bgp_inbound_filter",
    "bgp_decision",
    "bgp_outbound_filter",
    "bgp_encode_message",
];

/// Replay a generated op sequence into a tracer and dump it.
/// Ops: `(selector, a, b, point, ext_selector)` where selector 0 ingests a
/// new UPDATE, 1 begins a route, and 2.. records that `TraceKind`.
fn drive(
    ops: &[(u8, u64, u64, u8, u8)],
    sample_every: u64,
    capacity: usize,
    shard: u32,
) -> TraceDump {
    let mut t = Tracer::new(TraceConfig { sample_every, capacity, shard });
    let ea = t.intern("ext-a");
    let eb = t.intern("ext \"b\"\\weird");
    t.on_ingest(1, ops.len() as u64);
    for (i, (sel, a, b, point, ext_sel)) in ops.iter().enumerate() {
        t.set_now(i as u64 * 17);
        match sel {
            0 => {
                t.on_ingest(*a % 1000, *b % 64);
            }
            1 => {
                t.begin_route(*a);
            }
            _ => {
                let kind = TraceKind::ALL[usize::from(sel % 12)];
                let point = if *point >= POINTS.len() as u8 { NO_POINT } else { *point };
                let ext = match ext_sel % 3 {
                    0 => NO_EXT,
                    1 => ea,
                    _ => eb,
                };
                t.record_always(kind, point, ext, *a, *b);
            }
        }
    }
    t.postmortem("ext-a", ea, 1, "mem fault: {addr} \"quoted\"\\", Some(7), true);
    t.take_dump()
}

proptest! {
    #[test]
    fn jsonl_round_trips_for_arbitrary_op_sequences(
        ops in proptest::collection::vec(
            (0u8..14, 0u64..(1u64 << 53), 0u64..(1u64 << 53), 0u8..7, 0u8..3),
            1..120,
        ),
        sample_every in 0u64..4,
        capacity in 1usize..96,
        shard in 0u32..5,
    ) {
        let dump = drive(&ops, sample_every, capacity, shard);
        let jsonl = dump.to_jsonl(&POINTS);
        let parsed = TraceDump::from_jsonl(&jsonl, &POINTS)
            .expect("exported JSONL must parse");
        // Names may re-intern to different ids (appearance order), so
        // equivalence is checked by re-export: a fixed point after one trip.
        prop_assert_eq!(&parsed.to_jsonl(&POINTS), &jsonl);
        prop_assert_eq!(parsed.events.len(), dump.events.len());
        prop_assert_eq!(parsed.postmortems.len(), dump.postmortems.len());
        for (p, d) in parsed.events.iter().zip(dump.events.iter()) {
            prop_assert_eq!(p.kind, d.kind);
            prop_assert_eq!(p.trace_id, d.trace_id);
            prop_assert_eq!(p.seq, d.seq);
            prop_assert_eq!(p.ts_ns, d.ts_ns);
            prop_assert_eq!(p.point, d.point);
            prop_assert_eq!(p.a, d.a);
            prop_assert_eq!(p.b, d.b);
        }
    }

    #[test]
    fn chrome_export_is_parsable_and_complete(
        ops in proptest::collection::vec(
            (0u8..14, 0u64..(1u64 << 53), 0u64..(1u64 << 53), 0u8..7, 0u8..3),
            1..80,
        ),
        shard in 0u32..5,
    ) {
        let dump = drive(&ops, 1, 256, shard);
        let doc = dump.to_chrome(&POINTS);
        let parsed = Value::parse(&doc.to_string()).expect("chrome export must be valid JSON");
        let events = parsed.get("traceEvents").and_then(Value::as_array).unwrap();
        prop_assert_eq!(events.len(), dump.events.len());
        for ev in events {
            let ph = ev.get("ph").and_then(Value::as_str).unwrap();
            prop_assert!(matches!(ph, "B" | "E" | "i"), "unexpected phase {}", ph);
            prop_assert!(ev.get("ts").and_then(Value::as_f64).is_some());
            prop_assert!(ev.get("pid").and_then(Value::as_u64).is_some());
            prop_assert!(ev.get("tid").and_then(Value::as_u64).is_some());
            prop_assert!(ev.get("name").and_then(Value::as_str).is_some());
        }
        // Every enter has a phase-B record and every exit a phase-E one.
        let count = |want: &str| events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some(want))
            .count();
        let enters =
            dump.events.iter().filter(|e| e.kind == TraceKind::PointEnter).count();
        let exits = dump.events.iter().filter(|e| e.kind == TraceKind::PointExit).count();
        prop_assert_eq!(count("B"), enters);
        prop_assert_eq!(count("E"), exits);
    }
}
