//! Two-pass assembler.

use crate::Symbols;
use std::collections::HashMap;
use std::fmt;
use xbgp_vm::insn::{op, Insn, Program};

/// An assembly error with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, AsmError> {
    Err(AsmError { line, message: message.into() })
}

/// One parsed operand.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Operand {
    Reg(u8),
    Imm(i64),
    /// `[reg+off]` — the offset may be a symbolic name (resolved in pass 2),
    /// optionally negated.
    Mem(u8, OffExpr),
    /// A not-yet-resolved name (label or symbol).
    Name(String),
}

/// A memory-operand offset: literal or `±symbol`.
#[derive(Debug, Clone, PartialEq, Eq)]
enum OffExpr {
    Imm(i16),
    Sym { name: String, negate: bool },
}

struct Line {
    source_line: usize,
    mnemonic: String,
    operands: Vec<Operand>,
}

fn parse_int(s: &str) -> Option<i64> {
    let (neg, body) = match s.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, s),
    };
    let v = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()? as i64
    } else {
        body.parse::<i64>().ok()?
    };
    Some(if neg { -v } else { v })
}

fn parse_reg(s: &str) -> Option<u8> {
    let n = s.strip_prefix('r')?.parse::<u8>().ok()?;
    (n <= 10).then_some(n)
}

fn parse_operand(tok: &str, line: usize) -> Result<Operand, AsmError> {
    let tok = tok.trim();
    if tok.starts_with('[') {
        let inner =
            tok.strip_prefix('[')
                .and_then(|t| t.strip_suffix(']'))
                .ok_or_else(|| AsmError {
                    line,
                    message: format!("malformed memory operand `{tok}`"),
                })?;
        let (reg_s, off) = if let Some(i) = inner.find(['+', '-']) {
            let (r, rest) = inner.split_at(i);
            let rest = rest.trim();
            let off = match parse_int(rest) {
                Some(v) => {
                    if v < i64::from(i16::MIN) || v > i64::from(i16::MAX) {
                        return err(line, format!("offset {v} out of i16 range"));
                    }
                    OffExpr::Imm(v as i16)
                }
                None => {
                    // Symbolic offset: `+NAME` or `-NAME`.
                    let (negate, name) = match rest.strip_prefix('-') {
                        Some(n) => (true, n),
                        None => (false, rest.strip_prefix('+').unwrap_or(rest)),
                    };
                    let name = name.trim();
                    if name.is_empty()
                        || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
                    {
                        return err(line, format!("bad offset in `{tok}`"));
                    }
                    OffExpr::Sym { name: name.to_string(), negate }
                }
            };
            (r.trim(), off)
        } else {
            (inner.trim(), OffExpr::Imm(0))
        };
        let reg = parse_reg(reg_s)
            .ok_or_else(|| AsmError { line, message: format!("bad register in `{tok}`") })?;
        return Ok(Operand::Mem(reg, off));
    }
    if let Some(r) = parse_reg(tok) {
        return Ok(Operand::Reg(r));
    }
    if tok.starts_with('r') && tok[1..].chars().all(|c| c.is_ascii_digit()) {
        return err(line, format!("invalid register `{tok}` (valid: r0..r10)"));
    }
    if let Some(v) = parse_int(tok) {
        return Ok(Operand::Imm(v));
    }
    // `+N` jump offsets.
    if let Some(rest) = tok.strip_prefix('+') {
        if let Some(v) = parse_int(rest) {
            return Ok(Operand::Imm(v));
        }
    }
    Ok(Operand::Name(tok.to_string()))
}

fn strip_comment(line: &str) -> &str {
    let mut end = line.len();
    for marker in [";", "#", "//"] {
        if let Some(i) = line.find(marker) {
            end = end.min(i);
        }
    }
    &line[..end]
}

/// How many slots a mnemonic occupies.
fn slot_count(mnemonic: &str) -> usize {
    if mnemonic == "lddw" {
        2
    } else {
        1
    }
}

struct MnemonicInfo {
    /// Base opcode without the SRC bit (which depends on operand kind).
    kind: MnKind,
}

enum MnKind {
    /// ALU op with reg/imm source. `(op_bits, is64)`
    Alu(u8, bool),
    /// NEG: unary.
    Neg(bool),
    /// Byte swap: `(width, to_big_endian)`.
    End(i32, bool),
    /// Conditional jump `(op_bits, is64)`.
    Jcond(u8, bool),
    Ja,
    Call,
    Exit,
    /// `ldx` with size bits.
    Ldx(u8),
    /// `stx` with size bits.
    Stx(u8),
    /// `st` (immediate store) with size bits.
    St(u8),
    Lddw,
}

fn mnemonic_info(m: &str) -> Option<MnemonicInfo> {
    use MnKind::*;
    let kind = match m {
        "add" => Alu(op::ALU_ADD, true),
        "sub" => Alu(op::ALU_SUB, true),
        "mul" => Alu(op::ALU_MUL, true),
        "div" => Alu(op::ALU_DIV, true),
        "or" => Alu(op::ALU_OR, true),
        "and" => Alu(op::ALU_AND, true),
        "lsh" => Alu(op::ALU_LSH, true),
        "rsh" => Alu(op::ALU_RSH, true),
        "mod" => Alu(op::ALU_MOD, true),
        "xor" => Alu(op::ALU_XOR, true),
        "mov" => Alu(op::ALU_MOV, true),
        "arsh" => Alu(op::ALU_ARSH, true),
        "add32" => Alu(op::ALU_ADD, false),
        "sub32" => Alu(op::ALU_SUB, false),
        "mul32" => Alu(op::ALU_MUL, false),
        "div32" => Alu(op::ALU_DIV, false),
        "or32" => Alu(op::ALU_OR, false),
        "and32" => Alu(op::ALU_AND, false),
        "lsh32" => Alu(op::ALU_LSH, false),
        "rsh32" => Alu(op::ALU_RSH, false),
        "mod32" => Alu(op::ALU_MOD, false),
        "xor32" => Alu(op::ALU_XOR, false),
        "mov32" => Alu(op::ALU_MOV, false),
        "arsh32" => Alu(op::ALU_ARSH, false),
        "neg" => Neg(true),
        "neg32" => Neg(false),
        "be16" => End(16, true),
        "be32" => End(32, true),
        "be64" => End(64, true),
        "le16" => End(16, false),
        "le32" => End(32, false),
        "le64" => End(64, false),
        "jeq" => Jcond(op::JMP_JEQ, true),
        "jgt" => Jcond(op::JMP_JGT, true),
        "jge" => Jcond(op::JMP_JGE, true),
        "jlt" => Jcond(op::JMP_JLT, true),
        "jle" => Jcond(op::JMP_JLE, true),
        "jset" => Jcond(op::JMP_JSET, true),
        "jne" => Jcond(op::JMP_JNE, true),
        "jsgt" => Jcond(op::JMP_JSGT, true),
        "jsge" => Jcond(op::JMP_JSGE, true),
        "jslt" => Jcond(op::JMP_JSLT, true),
        "jsle" => Jcond(op::JMP_JSLE, true),
        "jeq32" => Jcond(op::JMP_JEQ, false),
        "jgt32" => Jcond(op::JMP_JGT, false),
        "jge32" => Jcond(op::JMP_JGE, false),
        "jlt32" => Jcond(op::JMP_JLT, false),
        "jle32" => Jcond(op::JMP_JLE, false),
        "jset32" => Jcond(op::JMP_JSET, false),
        "jne32" => Jcond(op::JMP_JNE, false),
        "jsgt32" => Jcond(op::JMP_JSGT, false),
        "jsge32" => Jcond(op::JMP_JSGE, false),
        "jslt32" => Jcond(op::JMP_JSLT, false),
        "jsle32" => Jcond(op::JMP_JSLE, false),
        "ja" => Ja,
        "call" => Call,
        "exit" => Exit,
        "ldxb" => Ldx(op::SIZE_B),
        "ldxh" => Ldx(op::SIZE_H),
        "ldxw" => Ldx(op::SIZE_W),
        "ldxdw" => Ldx(op::SIZE_DW),
        "stxb" => Stx(op::SIZE_B),
        "stxh" => Stx(op::SIZE_H),
        "stxw" => Stx(op::SIZE_W),
        "stxdw" => Stx(op::SIZE_DW),
        "stb" => St(op::SIZE_B),
        "sth" => St(op::SIZE_H),
        "stw" => St(op::SIZE_W),
        "stdw" => St(op::SIZE_DW),
        "lddw" => Lddw,
        _ => return None,
    };
    Some(MnemonicInfo { kind })
}

/// Assemble with an empty external symbol table.
pub fn assemble(src: &str) -> Result<Program, AsmError> {
    assemble_with_symbols(src, &Symbols::new())
}

/// Assemble `src`, resolving names through `.equ` definitions, labels, and
/// the provided external symbol table (in that priority order).
pub fn assemble_with_symbols(src: &str, external: &Symbols) -> Result<Program, AsmError> {
    let mut lines: Vec<Line> = Vec::new();
    let mut labels: HashMap<String, usize> = HashMap::new();
    let mut equs: HashMap<String, i64> = HashMap::new();
    let mut pc = 0usize;

    // Pass 1: tokenize, collect labels (slot addresses) and .equ constants.
    for (lineno0, raw) in src.lines().enumerate() {
        let lineno = lineno0 + 1;
        let mut text = strip_comment(raw).trim();
        if text.is_empty() {
            continue;
        }
        // Directives.
        if let Some(rest) = text.strip_prefix(".equ") {
            let parts: Vec<&str> = rest.splitn(2, ',').map(str::trim).collect();
            if parts.len() != 2 || parts[0].is_empty() {
                return err(lineno, ".equ requires `.equ NAME, value`");
            }
            let value = match parse_int(parts[1]) {
                Some(v) => v,
                None => match equs.get(parts[1]).or_else(|| external.get(parts[1])) {
                    Some(v) => *v,
                    None => return err(lineno, format!("unknown value `{}` in .equ", parts[1])),
                },
            };
            equs.insert(parts[0].to_string(), value);
            continue;
        }
        // Labels (possibly followed by an instruction on the same line).
        while let Some(colon) = text.find(':') {
            let (label, rest) = text.split_at(colon);
            let label = label.trim();
            if label.is_empty()
                || !label.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
            {
                break;
            }
            if labels.insert(label.to_string(), pc).is_some() {
                return err(lineno, format!("duplicate label `{label}`"));
            }
            text = rest[1..].trim();
            if text.is_empty() {
                break;
            }
        }
        if text.is_empty() {
            continue;
        }
        let (mnemonic, rest) = match text.split_once(char::is_whitespace) {
            Some((m, r)) => (m.to_ascii_lowercase(), r.trim()),
            None => (text.to_ascii_lowercase(), ""),
        };
        let operands = if rest.is_empty() {
            Vec::new()
        } else {
            rest.split(',')
                .map(|t| parse_operand(t, lineno))
                .collect::<Result<Vec<_>, _>>()?
        };
        if mnemonic_info(&mnemonic).is_none() {
            return err(lineno, format!("unknown mnemonic `{mnemonic}`"));
        }
        pc += slot_count(&mnemonic);
        lines.push(Line { source_line: lineno, mnemonic, operands });
    }

    // Pass 2: encode.
    let mut insns: Vec<Insn> = Vec::new();
    let resolve = |name: &str, lineno: usize| -> Result<i64, AsmError> {
        if let Some(v) = equs.get(name) {
            return Ok(*v);
        }
        if let Some(v) = external.get(name) {
            return Ok(*v);
        }
        err(lineno, format!("unknown symbol `{name}`"))
    };

    for line in &lines {
        let ln = line.source_line;
        let info = mnemonic_info(&line.mnemonic).expect("validated in pass 1");
        let cur_pc = insns.len();
        // Resolve a jump-target operand to a relative i16 offset.
        let jump_off = |opnd: &Operand| -> Result<i16, AsmError> {
            let target = match opnd {
                Operand::Imm(v) => {
                    return i16::try_from(*v).map_err(|_| AsmError {
                        line: ln,
                        message: format!("jump offset {v} out of range"),
                    })
                }
                Operand::Name(n) => match labels.get(n.as_str()) {
                    Some(t) => *t as i64,
                    None => resolve(n, ln)?,
                },
                _ => return err(ln, "expected a label or offset"),
            };
            let rel = target - (cur_pc as i64) - 1;
            i16::try_from(rel).map_err(|_| AsmError {
                line: ln,
                message: format!("jump to {target} out of i16 range"),
            })
        };
        let imm_of = |opnd: &Operand| -> Result<i64, AsmError> {
            match opnd {
                Operand::Imm(v) => Ok(*v),
                Operand::Name(n) => resolve(n, ln),
                _ => err(ln, "expected an immediate or symbol"),
            }
        };
        let imm32_of = |opnd: &Operand| -> Result<i32, AsmError> {
            let v = imm_of(opnd)?;
            i32::try_from(v)
                .or_else(|_| {
                    // Accept unsigned 32-bit constants like 0xffffffff.
                    u32::try_from(v).map(|u| u as i32)
                })
                .map_err(|_| AsmError {
                    line: ln,
                    message: format!("immediate {v} out of 32-bit range"),
                })
        };
        let reg_of = |opnd: &Operand| -> Result<u8, AsmError> {
            match opnd {
                Operand::Reg(r) => Ok(*r),
                _ => err(ln, "expected a register"),
            }
        };
        let mem_of = |opnd: &Operand| -> Result<(u8, i16), AsmError> {
            match opnd {
                Operand::Mem(r, OffExpr::Imm(o)) => Ok((*r, *o)),
                Operand::Mem(r, OffExpr::Sym { name, negate }) => {
                    let mut v = resolve(name, ln)?;
                    if *negate {
                        v = -v;
                    }
                    let off = i16::try_from(v).map_err(|_| AsmError {
                        line: ln,
                        message: format!("symbolic offset {name}={v} out of i16 range"),
                    })?;
                    Ok((*r, off))
                }
                _ => err(ln, "expected `[reg+off]`"),
            }
        };
        let want = |n: usize| -> Result<(), AsmError> {
            if line.operands.len() == n {
                Ok(())
            } else {
                err(
                    ln,
                    format!(
                        "`{}` takes {n} operand(s), got {}",
                        line.mnemonic,
                        line.operands.len()
                    ),
                )
            }
        };

        match info.kind {
            MnKind::Alu(opb, is64) => {
                want(2)?;
                let cls = if is64 { op::CLS_ALU64 } else { op::CLS_ALU };
                let dst = reg_of(&line.operands[0])?;
                match &line.operands[1] {
                    Operand::Reg(src) => {
                        insns.push(Insn::new(cls | opb | op::SRC_X, dst, *src, 0, 0))
                    }
                    other => {
                        let imm = imm32_of(other)?;
                        insns.push(Insn::new(cls | opb | op::SRC_K, dst, 0, 0, imm));
                    }
                }
            }
            MnKind::Neg(is64) => {
                want(1)?;
                let cls = if is64 { op::CLS_ALU64 } else { op::CLS_ALU };
                insns.push(Insn::new(cls | op::ALU_NEG, reg_of(&line.operands[0])?, 0, 0, 0));
            }
            MnKind::End(width, to_be) => {
                want(1)?;
                let src_bit = if to_be { op::SRC_X } else { op::SRC_K };
                insns.push(Insn::new(
                    op::CLS_ALU | op::ALU_END | src_bit,
                    reg_of(&line.operands[0])?,
                    0,
                    0,
                    width,
                ));
            }
            MnKind::Jcond(opb, is64) => {
                want(3)?;
                let cls = if is64 { op::CLS_JMP } else { op::CLS_JMP32 };
                let dst = reg_of(&line.operands[0])?;
                let off = jump_off(&line.operands[2])?;
                match &line.operands[1] {
                    Operand::Reg(src) => {
                        insns.push(Insn::new(cls | opb | op::SRC_X, dst, *src, off, 0))
                    }
                    other => {
                        let imm = imm32_of(other)?;
                        insns.push(Insn::new(cls | opb | op::SRC_K, dst, 0, off, imm));
                    }
                }
            }
            MnKind::Ja => {
                want(1)?;
                let off = jump_off(&line.operands[0])?;
                insns.push(Insn::new(op::CLS_JMP | op::JMP_JA, 0, 0, off, 0));
            }
            MnKind::Call => {
                want(1)?;
                let id = imm_of(&line.operands[0])?;
                let id32 = u32::try_from(id).map_err(|_| AsmError {
                    line: ln,
                    message: format!("helper id {id} invalid"),
                })?;
                insns.push(Insn::new(op::CLS_JMP | op::JMP_CALL, 0, 0, 0, id32 as i32));
            }
            MnKind::Exit => {
                want(0)?;
                insns.push(Insn::new(op::CLS_JMP | op::JMP_EXIT, 0, 0, 0, 0));
            }
            MnKind::Ldx(size) => {
                want(2)?;
                let dst = reg_of(&line.operands[0])?;
                let (src, off) = mem_of(&line.operands[1])?;
                insns.push(Insn::new(op::CLS_LDX | size | op::MODE_MEM, dst, src, off, 0));
            }
            MnKind::Stx(size) => {
                want(2)?;
                let (dst, off) = mem_of(&line.operands[0])?;
                let src = reg_of(&line.operands[1])?;
                insns.push(Insn::new(op::CLS_STX | size | op::MODE_MEM, dst, src, off, 0));
            }
            MnKind::St(size) => {
                want(2)?;
                let (dst, off) = mem_of(&line.operands[0])?;
                let imm = imm32_of(&line.operands[1])?;
                insns.push(Insn::new(op::CLS_ST | size | op::MODE_MEM, dst, 0, off, imm));
            }
            MnKind::Lddw => {
                want(2)?;
                let dst = reg_of(&line.operands[0])?;
                let v = imm_of(&line.operands[1])? as u64;
                insns.push(Insn::new(op::LDDW, dst, 0, 0, v as u32 as i32));
                insns.push(Insn::new(0, 0, 0, 0, (v >> 32) as u32 as i32));
            }
        }
    }
    Ok(Program::new(insns))
}
