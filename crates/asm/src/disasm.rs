//! Disassembler: renders a program back into assembler-compatible text.
//!
//! The output of [`disassemble`] reassembles to identical bytecode, which
//! the round-trip tests rely on.

use xbgp_vm::insn::{op, Program};

fn alu_name(opb: u8) -> &'static str {
    match opb {
        op::ALU_ADD => "add",
        op::ALU_SUB => "sub",
        op::ALU_MUL => "mul",
        op::ALU_DIV => "div",
        op::ALU_OR => "or",
        op::ALU_AND => "and",
        op::ALU_LSH => "lsh",
        op::ALU_RSH => "rsh",
        op::ALU_MOD => "mod",
        op::ALU_XOR => "xor",
        op::ALU_MOV => "mov",
        op::ALU_ARSH => "arsh",
        _ => "?",
    }
}

fn jmp_name(opb: u8) -> &'static str {
    match opb {
        op::JMP_JEQ => "jeq",
        op::JMP_JGT => "jgt",
        op::JMP_JGE => "jge",
        op::JMP_JLT => "jlt",
        op::JMP_JLE => "jle",
        op::JMP_JSET => "jset",
        op::JMP_JNE => "jne",
        op::JMP_JSGT => "jsgt",
        op::JMP_JSGE => "jsge",
        op::JMP_JSLT => "jslt",
        op::JMP_JSLE => "jsle",
        _ => "?",
    }
}

fn size_suffix(opcode: u8) -> &'static str {
    match opcode & op::SIZE_MASK {
        op::SIZE_B => "b",
        op::SIZE_H => "h",
        op::SIZE_W => "w",
        _ => "dw",
    }
}

fn mem_operand(reg: u8, off: i16) -> String {
    if off == 0 {
        format!("[r{reg}]")
    } else if off > 0 {
        format!("[r{reg}+{off}]")
    } else {
        format!("[r{reg}{off}]")
    }
}

fn signed_off(off: i16) -> String {
    if off >= 0 {
        format!("+{off}")
    } else {
        format!("{off}")
    }
}

/// Render `prog` as assembly text, one instruction per line.
pub fn disassemble(prog: &Program) -> String {
    let mut out = String::new();
    let insns = &prog.insns;
    let mut pc = 0;
    while pc < insns.len() {
        let i = insns[pc];
        let cls = i.class();
        let line = match cls {
            op::CLS_ALU | op::CLS_ALU64 => {
                let suffix = if cls == op::CLS_ALU64 { "" } else { "32" };
                let opb = i.opcode & op::ALU_OP_MASK;
                match opb {
                    op::ALU_NEG => format!("neg{suffix} r{}", i.dst),
                    op::ALU_END => {
                        let dir = if i.opcode & op::SRC_X != 0 { "be" } else { "le" };
                        format!("{dir}{} r{}", i.imm, i.dst)
                    }
                    _ => {
                        if i.opcode & op::SRC_X != 0 {
                            format!("{}{suffix} r{}, r{}", alu_name(opb), i.dst, i.src)
                        } else {
                            format!("{}{suffix} r{}, {}", alu_name(opb), i.dst, i.imm)
                        }
                    }
                }
            }
            op::CLS_JMP | op::CLS_JMP32 => {
                let suffix = if cls == op::CLS_JMP { "" } else { "32" };
                let opb = i.opcode & op::ALU_OP_MASK;
                match opb {
                    op::JMP_JA => format!("ja {}", signed_off(i.offset)),
                    op::JMP_CALL => format!("call {}", i.imm as u32),
                    op::JMP_EXIT => "exit".to_string(),
                    _ => {
                        if i.opcode & op::SRC_X != 0 {
                            format!(
                                "{}{suffix} r{}, r{}, {}",
                                jmp_name(opb),
                                i.dst,
                                i.src,
                                signed_off(i.offset)
                            )
                        } else {
                            format!(
                                "{}{suffix} r{}, {}, {}",
                                jmp_name(opb),
                                i.dst,
                                i.imm,
                                signed_off(i.offset)
                            )
                        }
                    }
                }
            }
            op::CLS_LD => {
                // lddw pair.
                let hi = insns.get(pc + 1).map(|h| h.imm as u32).unwrap_or(0);
                let v = u64::from(i.imm as u32) | (u64::from(hi) << 32);
                pc += 1;
                format!("lddw r{}, {:#x}", i.dst, v)
            }
            op::CLS_LDX => {
                format!("ldx{} r{}, {}", size_suffix(i.opcode), i.dst, mem_operand(i.src, i.offset))
            }
            op::CLS_STX => {
                format!("stx{} {}, r{}", size_suffix(i.opcode), mem_operand(i.dst, i.offset), i.src)
            }
            op::CLS_ST => {
                format!("st{} {}, {}", size_suffix(i.opcode), mem_operand(i.dst, i.offset), i.imm)
            }
            _ => format!("; unknown opcode {:#04x}", i.opcode),
        };
        out.push_str(&line);
        out.push('\n');
        pc += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbgp_vm::insn::build;

    #[test]
    fn renders_basic_forms() {
        let prog = Program::new(vec![
            build::mov_imm(1, 5),
            build::mov_reg(2, 1),
            build::ldxw(0, 1, -4),
            build::stxw(10, 1, -8),
            build::call(3),
            build::exit(),
        ]);
        let text = disassemble(&prog);
        assert!(text.contains("mov r1, 5"));
        assert!(text.contains("mov r2, r1"));
        assert!(text.contains("ldxw r0, [r1-4]"));
        assert!(text.contains("stxw [r10-8], r1"));
        assert!(text.contains("call 3"));
        assert!(text.contains("exit"));
    }

    #[test]
    fn zero_offset_memory_operand() {
        let prog = Program::new(vec![build::ldxb(0, 2, 0), build::exit()]);
        assert!(disassemble(&prog).contains("ldxb r0, [r2]"));
    }
}
