//! # xbgp-asm — eBPF assembler and disassembler
//!
//! xBGP extension code in the paper is C compiled to eBPF with clang. This
//! workspace has no offline BPF C toolchain, so extensions are written in
//! eBPF assembly instead and assembled to the *identical bytecode format*
//! the VM executes (see DESIGN.md, substitution table). The syntax follows
//! the ubpf/llvm conventions:
//!
//! ```text
//! ; Reject routes whose nexthop metric exceeds MAX_METRIC (Listing 1).
//! .equ MAX_METRIC, 1000
//!     call get_nexthop          ; r0 = &nexthop
//!     ldxw r6, [r0+0]           ; r6 = nexthop->igp_metric
//!     call get_peer_info        ; r0 = &peer
//!     ldxw r7, [r0+8]           ; r7 = peer->peer_type
//!     jeq r7, EBGP_SESSION, check_metric
//!     call next                 ; iBGP: do not filter
//! check_metric:
//!     jgt r6, MAX_METRIC, reject
//!     call next
//! reject:
//!     mov r0, FILTER_REJECT
//!     exit
//! ```
//!
//! * `;`, `#` and `//` start comments; labels end with `:`.
//! * `.equ NAME, value` defines a constant; the assembler also accepts an
//!   external symbol table (helper names and ABI constants from
//!   `xbgp-core`).
//! * Registers are `r0`..`r10`; memory operands are `[rX]`, `[rX+imm]`,
//!   `[rX-imm]`.
//! * `32`-suffixed mnemonics (`mov32`, `add32`, `jeq32`, …) select the
//!   32-bit ALU / JMP32 classes.

mod asm;
mod disasm;

pub use asm::{assemble, assemble_with_symbols, AsmError};
pub use disasm::disassemble;

use std::collections::HashMap;

/// A symbol table mapping names (helper functions, ABI constants) to
/// numeric values for use as immediates or call targets.
pub type Symbols = HashMap<String, i64>;

/// Convenience builder for symbol tables.
pub fn symbols<I, S>(pairs: I) -> Symbols
where
    I: IntoIterator<Item = (S, i64)>,
    S: Into<String>,
{
    pairs.into_iter().map(|(k, v)| (k.into(), v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbgp_vm::insn::{build, op};
    use xbgp_vm::{ExecOutcome, MemoryMap, NoHelpers, Vm};

    fn run(src: &str) -> u64 {
        let prog = assemble(src).expect("assembles");
        let mut mem = MemoryMap::new();
        match Vm::new(&prog).run(&mut mem, &mut NoHelpers, &[]).unwrap() {
            ExecOutcome::Return(v) => v,
            ExecOutcome::Next => panic!("unexpected next"),
        }
    }

    #[test]
    fn trivial_program() {
        assert_eq!(run("mov r0, 42\nexit"), 42);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let src = r"
            ; a comment
            # another
            mov r0, 1   // trailing
            exit
        ";
        assert_eq!(run(src), 1);
    }

    #[test]
    fn arithmetic_and_registers() {
        let src = r"
            mov r1, 6
            mov r2, 7
            mov r0, r1
            mul r0, r2
            exit
        ";
        assert_eq!(run(src), 42);
    }

    #[test]
    fn labels_and_jumps() {
        let src = r"
            mov r0, 0
            mov r1, 10
        loop:
            add r0, r1
            sub r1, 1
            jne r1, 0, loop
            exit
        ";
        assert_eq!(run(src), 55);
    }

    #[test]
    fn forward_jump() {
        let src = r"
            mov r0, 1
            ja done
            mov r0, 2
        done:
            exit
        ";
        assert_eq!(run(src), 1);
    }

    #[test]
    fn equ_constants() {
        let src = r"
            .equ ANSWER, 42
            mov r0, ANSWER
            exit
        ";
        assert_eq!(run(src), 42);
    }

    #[test]
    fn external_symbols_and_call() {
        let syms = symbols([("my_helper", 7i64)]);
        let prog = assemble_with_symbols("call my_helper\nexit", &syms).unwrap();
        assert_eq!(prog.insns[0], build::call(7));
    }

    #[test]
    fn memory_operands() {
        let src = r"
            mov r1, 0x11223344
            stxw [r10-8], r1
            ldxw r0, [r10-8]
            exit
        ";
        assert_eq!(run(src), 0x1122_3344);
        let src = r"
            stb [r10-1], 0x7f
            ldxb r0, [r10-1]
            exit
        ";
        assert_eq!(run(src), 0x7f);
    }

    #[test]
    fn lddw_and_hex() {
        let src = r"
            lddw r0, 0xdeadbeefcafef00d
            exit
        ";
        assert_eq!(run(src), 0xdead_beef_cafe_f00d);
    }

    #[test]
    fn lddw_counts_two_slots_for_labels() {
        let src = r"
            lddw r1, 0x100000000
            ja end
            mov r0, 9
        end:
            mov r0, 5
            exit
        ";
        assert_eq!(run(src), 5);
    }

    #[test]
    fn byte_swaps() {
        assert_eq!(run("mov r0, 0x01020304\nbe32 r0\nexit"), u64::from(0x0102_0304u32.to_be()));
        assert_eq!(run("mov r0, 0x0102\nbe16 r0\nexit"), u64::from(0x0102u16.to_be()));
    }

    #[test]
    fn thirty_two_bit_mnemonics() {
        // add32 wraps at 32 bits.
        let src = r"
            mov r0, -1
            add32 r0, 1
            exit
        ";
        assert_eq!(run(src), 0);
        let prog = assemble("mov32 r0, 5\nexit").unwrap();
        assert_eq!(prog.insns[0].opcode, op::CLS_ALU | op::ALU_MOV | op::SRC_K);
    }

    #[test]
    fn negative_immediates() {
        assert_eq!(run("mov r0, -5\nneg r0\nexit") as i64, 5);
    }

    #[test]
    fn signed_jumps_assemble() {
        let src = r"
            mov r1, -1
            mov r0, 0
            jsgt r1, -2, yes
            ja done
        yes:
            mov r0, 1
        done:
            exit
        ";
        assert_eq!(run(src), 1);
    }

    #[test]
    fn errors_are_reported_with_line_numbers() {
        let err = assemble("mov r0, 1\nbogus r1, 2\nexit").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("bogus"));

        let err = assemble("jeq r1, 0, nowhere\nexit").unwrap_err();
        assert!(err.to_string().contains("nowhere"));

        let err = assemble("mov r11, 1\nexit").unwrap_err();
        assert!(err.to_string().contains("register"));

        let err = assemble(".equ X\nexit").unwrap_err();
        assert_eq!(err.line, 1);
    }

    #[test]
    fn duplicate_label_rejected() {
        let err = assemble("a:\nmov r0, 0\na:\nexit").unwrap_err();
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn disassemble_round_trip() {
        let src = r"
            mov r1, 10
            mov32 r2, -3
            lddw r3, 0xdeadbeefcafef00d
            ldxw r0, [r1+4]
            stxdw [r10-8], r2
            stb [r10-1], 7
            be32 r0
            jne r1, r2, +2
            call 13
            add r0, r1
            exit
        ";
        let syms = symbols([("13", 13i64)]);
        let _ = &syms;
        let prog = assemble(src).unwrap();
        let text = disassemble(&prog);
        let prog2 = assemble(&text).expect("disassembly reassembles");
        assert_eq!(prog.insns, prog2.insns);
    }

    #[test]
    fn label_on_same_line_as_insn() {
        let src = r"
            mov r0, 0
        here: add r0, 1
            jeq r0, 3, done
            ja here
        done: exit
        ";
        assert_eq!(run(src), 3);
    }
}
