//! Tier-1 loopback integration tests: small enough for CI, end-to-end
//! enough to pin the whole runtime — real TCP handshakes, the mpsc fan-in,
//! and byte-identical Loc-RIB parity against the netsim replay.

use xbgp_driver::Dut;
use xbgp_serve::selftest::{run, SelftestSpec};

fn small(dut: Dut, sessions: usize, shards: usize) -> SelftestSpec {
    let mut spec = SelftestSpec::new(dut, sessions);
    spec.routes = 400;
    spec.rounds = 3;
    spec.seed = 7;
    spec.shards = shards;
    spec
}

#[test]
fn eight_sessions_match_netsim_replay_fir() {
    let spec = small(Dut::Fir, 8, 1);
    let out = run(&spec);
    assert_eq!(out.established, 8, "all edge sessions reach Established in the daemon");
    assert_eq!(out.updates_applied, out.expected_updates);
    assert_eq!(out.parity_mismatches, 0, "TCP Loc-RIB ≡ netsim-replay Loc-RIB");
    assert_eq!(out.oracle_mismatches, 0, "incremental ≡ full-recompute oracle");
    assert!(out.best_changes > 0);
    assert!(out.loc_rib_len > 0);
    assert!(out.latency.count > 0, "every UPDATE frame lands in the latency histogram");
}

#[test]
fn eight_sessions_match_netsim_replay_wren() {
    let spec = small(Dut::Wren, 8, 1);
    let out = run(&spec);
    assert_eq!(out.established, 8);
    assert_eq!(out.parity_mismatches, 0);
    assert_eq!(out.oracle_mismatches, 0);
    assert!(out.best_changes > 0);
}

#[test]
fn sharded_cores_preserve_parity() {
    let spec = small(Dut::Fir, 6, 2);
    let out = run(&spec);
    assert_eq!(out.established, 6);
    assert_eq!(out.parity_mismatches, 0, "prefix-split UPDATEs reassemble the same Loc-RIB");
    assert_eq!(out.oracle_mismatches, 0);
}

#[test]
fn paced_rounds_preserve_parity() {
    let mut spec = small(Dut::Wren, 4, 1);
    spec.round_gap = Some(std::time::Duration::from_millis(20));
    let out = run(&spec);
    assert_eq!(out.established, 4);
    assert_eq!(out.parity_mismatches, 0);
}
