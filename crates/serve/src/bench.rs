//! Peer-scaling benchmark: sessions × update rate → propagation latency.
//!
//! Each cell runs the full loopback selftest machinery (so every cell is
//! also a correctness check — parity against the netsim replay and the
//! full-recompute oracle) and reports the socket-to-RIB latency
//! histogram's p50/p99 alongside the achieved update rate. The output is
//! `BENCH_peer_scaling.json`, in the same hand-written shape as
//! `BENCH_churn.json`.
//!
//! Environment knobs (for CI-scale runs):
//!
//! * `PEER_BENCH_SESSIONS` — comma list, default `8,64,256`
//! * `PEER_BENCH_ROUTES`   — initial table size, default `2000`
//! * `PEER_BENCH_ROUNDS`   — churn rounds, default `6`
//! * `PEER_BENCH_GAPS_MS`  — comma list of per-client round gaps,
//!   default `0,100` (`0` = blast as fast as TCP accepts)

use std::time::Duration;

use xbgp_driver::Dut;

use crate::selftest::{self, SelftestSpec};

/// One measured grid cell.
pub struct Cell {
    pub dut: Dut,
    pub sessions: usize,
    pub routes: usize,
    pub rounds: usize,
    pub gap_ms: u64,
    pub updates: u64,
    pub updates_per_sec: f64,
    pub p50_ns: u64,
    pub p99_ns: u64,
    pub best_changes: u64,
    pub parity_mismatches: usize,
    pub oracle_mismatches: usize,
    pub established: usize,
    pub elapsed_ms: u64,
}

fn env_list(name: &str, default: &[usize]) -> Vec<usize> {
    match std::env::var(name) {
        Ok(v) => v
            .split(',')
            .filter(|s| !s.trim().is_empty())
            .map(|s| s.trim().parse().unwrap_or_else(|_| panic!("bad {name} entry: {s}")))
            .collect(),
        Err(_) => default.to_vec(),
    }
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.trim().parse().ok()).unwrap_or(default)
}

/// Run the full grid and return the measured cells.
pub fn run_grid() -> Vec<Cell> {
    let sessions = env_list("PEER_BENCH_SESSIONS", &[8, 64, 256]);
    let gaps = env_list("PEER_BENCH_GAPS_MS", &[0, 100]);
    let routes = env_usize("PEER_BENCH_ROUTES", 2000);
    let rounds = env_usize("PEER_BENCH_ROUNDS", 6);

    let mut cells = Vec::new();
    for dut in [Dut::Fir, Dut::Wren] {
        for &n in &sessions {
            for &gap_ms in &gaps {
                eprintln!(
                    "peer-scaling: dut={} sessions={n} gap={gap_ms}ms routes={routes} \
                     rounds={rounds}",
                    dut.slug()
                );
                let mut spec = SelftestSpec::new(dut, n);
                spec.routes = routes;
                spec.rounds = rounds;
                spec.round_gap = (gap_ms > 0).then(|| Duration::from_millis(gap_ms as u64));
                let out = selftest::run(&spec);
                assert!(out.passed(&spec), "bench cell failed correctness: {out:?}");
                let secs = out.elapsed.as_secs_f64().max(1e-9);
                cells.push(Cell {
                    dut,
                    sessions: n,
                    routes,
                    rounds,
                    gap_ms: gap_ms as u64,
                    updates: out.updates_applied,
                    updates_per_sec: out.updates_applied as f64 / secs,
                    p50_ns: out.latency.quantile(0.50),
                    p99_ns: out.latency.quantile(0.99),
                    best_changes: out.best_changes,
                    parity_mismatches: out.parity_mismatches,
                    oracle_mismatches: out.oracle_mismatches,
                    established: out.established,
                    elapsed_ms: out.elapsed.as_millis() as u64,
                });
            }
        }
    }
    cells
}

/// Serialize cells in the repo's hand-written benchmark JSON shape.
pub fn to_json(cells: &[Cell], date: &str) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"benchmark\": \"peer_scaling\",\n");
    s.push_str(&format!("  \"date\": \"{date}\",\n"));
    s.push_str("  \"command\": \"cargo run --release -p xbgp-serve -- bench\",\n");
    s.push_str(
        "  \"workload\": \"loopback TCP sessions, prefix-partitioned table blast + churn storm \
         (routegen), each cell parity-checked against the netsim feeder replay and the \
         full-recompute oracle\",\n",
    );
    s.push_str(
        "  \"note\": \"latency = socket read to RIB applied (xbgp-obs histogram, ns); rate = \
         routing updates absorbed / wall clock; gap_ms = per-client pause between churn \
         rounds\",\n",
    );
    s.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"dut\": \"{}\", \"sessions\": {}, \"routes\": {}, \"rounds\": {}, \
             \"gap_ms\": {}, \"updates\": {}, \"updates_per_sec\": {:.1}, \"p50_latency_ns\": \
             {}, \"p99_latency_ns\": {}, \"best_changes\": {}, \"established\": {}, \
             \"parity_mismatches\": {}, \"oracle_mismatches\": {}, \"elapsed_ms\": {}}}{}\n",
            c.dut.slug(),
            c.sessions,
            c.routes,
            c.rounds,
            c.gap_ms,
            c.updates,
            c.updates_per_sec,
            c.p50_ns,
            c.p99_ns,
            c.best_changes,
            c.established,
            c.parity_mismatches,
            c.oracle_mismatches,
            c.elapsed_ms,
            if i + 1 == cells.len() { "" } else { "," },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}
