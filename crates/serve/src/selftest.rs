//! End-to-end loopback selftest: the acceptance harness for the TCP
//! runtime.
//!
//! N real TCP clients each own a prefix-hash slice of a generated table
//! and of every churn round, handshake against [`crate::server::Server`],
//! blast their slices, and hold their sessions open. When the daemons
//! have absorbed exactly the logical stream, the combined serve Loc-RIB
//! must be **byte-identical** to the same stream replayed through the
//! netsim [`xbgp_harness::Feeder`] — the virtual-time harness every other
//! figure in this repo trusts — and to the daemons' own full-recompute
//! oracle.
//!
//! Prefix-partitioning the sessions is what makes the comparison exact:
//! TCP only guarantees order per connection, but each prefix lives on
//! exactly one connection, so per-prefix update order matches the
//! single-feeder replay, and best-path selection is independent per
//! prefix.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use netsim::{Sim, SimConfig};
use routegen::churn::{churn_rounds, total_updates, ChurnRound, ChurnSpec};
use routegen::{to_updates, Route, TableSpec};
use xbgp_driver::{DaemonSpec, Dut, DutNode};
use xbgp_harness::churn::dump_diff;
use xbgp_harness::shard::shard_of;
use xbgp_harness::Feeder;
use xbgp_obs::{HistogramSnapshot, MetricValue};
use xbgp_wire::Message;

use crate::client::{self, ClientPlan};
use crate::server::{ServeConfig, Server};

/// One selftest description.
#[derive(Debug, Clone, Copy)]
pub struct SelftestSpec {
    pub dut: Dut,
    /// Concurrent TCP sessions.
    pub sessions: usize,
    /// Initial table size (split across sessions by prefix hash).
    pub routes: usize,
    /// Churn rounds after the initial blast.
    pub rounds: usize,
    pub seed: u64,
    /// Shard cores inside the server.
    pub shards: usize,
    /// Wall-clock gap between churn rounds per client; `None` = blast.
    pub round_gap: Option<Duration>,
    /// Skip the netsim reference replay (bench cells reuse the parity
    /// machinery but only need the oracle check).
    pub check_parity: bool,
}

impl SelftestSpec {
    pub fn new(dut: Dut, sessions: usize) -> SelftestSpec {
        SelftestSpec {
            dut,
            sessions,
            routes: 2000,
            rounds: 6,
            seed: 42,
            shards: 1,
            round_gap: None,
            check_parity: true,
        }
    }
}

/// Measured outcome of one selftest run.
#[derive(Debug, Clone)]
pub struct SelftestOutcome {
    /// Sessions the daemons saw established (must equal `spec.sessions`).
    pub established: usize,
    /// Routing updates (NLRI + withdrawn) absorbed across shard cores.
    pub updates_applied: u64,
    /// Expected logical stream size (table + churn).
    pub expected_updates: u64,
    /// Best-path changes across shard cores.
    pub best_changes: u64,
    /// Loc-RIB entries differing from the netsim feeder replay
    /// (only populated when `check_parity`; 0 = byte-identical).
    pub parity_mismatches: usize,
    /// Loc-RIB entries differing from the daemons' own full-recompute
    /// oracle (0 = byte-identical).
    pub oracle_mismatches: usize,
    /// Loc-RIB size after the run.
    pub loc_rib_len: usize,
    /// Socket-to-RIB propagation latency (ns).
    pub latency: HistogramSnapshot,
    /// Wall-clock duration of the TCP phase (connect → stream absorbed).
    pub elapsed: Duration,
    /// Connections the server dropped for lack of session slots.
    pub rejected: u64,
}

impl SelftestOutcome {
    pub fn passed(&self, spec: &SelftestSpec) -> bool {
        self.established == spec.sessions
            && self.updates_applied == self.expected_updates
            && self.parity_mismatches == 0
            && self.oracle_mismatches == 0
    }
}

/// Split `rounds` into per-session slices by prefix hash, mirroring the
/// sharded-churn split in [`xbgp_harness::churn`].
fn split_rounds(rounds: &[ChurnRound], sessions: usize) -> Vec<Vec<ChurnRound>> {
    (0..sessions)
        .map(|k| {
            rounds
                .iter()
                .map(|round| ChurnRound {
                    withdrawals: round
                        .withdrawals
                        .iter()
                        .filter(|p| shard_of(p, sessions) == k)
                        .copied()
                        .collect(),
                    announcements: round
                        .announcements
                        .iter()
                        .filter(|r| shard_of(&r.prefix, sessions) == k)
                        .cloned()
                        .collect(),
                })
                .collect()
        })
        .collect()
}

fn encode_all(updates: Vec<xbgp_wire::UpdateMsg>) -> Vec<Vec<u8>> {
    updates
        .into_iter()
        .map(|u| Message::Update(u).encode(4).expect("update encodes"))
        .collect()
}

/// Run one selftest. Panics only on harness bugs (thread failures); all
/// protocol-level divergence is reported in the outcome.
pub fn run(spec: &SelftestSpec) -> SelftestOutcome {
    let table = routegen::generate(&TableSpec::new(spec.routes, spec.seed));
    let rounds = churn_rounds(&table, &ChurnSpec::new(spec.seed, spec.rounds));
    let expected_updates = table.len() as u64 + total_updates(&rounds);

    // Per-session slices: initial table and every round, by prefix hash.
    let mut tables: Vec<Vec<Route>> = vec![Vec::new(); spec.sessions];
    for r in &table {
        tables[shard_of(&r.prefix, spec.sessions)].push(r.clone());
    }
    let session_rounds = split_rounds(&rounds, spec.sessions);

    let server = Server::start(ServeConfig {
        shards: spec.shards,
        ..ServeConfig::new(spec.dut, spec.sessions)
    })
    .expect("bind loopback server");
    let addr = server.addr();

    let stop = Arc::new(AtomicBool::new(false));
    let started = Instant::now();
    let mut clients = Vec::new();
    for (k, routes) in tables.into_iter().enumerate() {
        let plan = ClientPlan {
            initial: encode_all(to_updates(&routes, 1, None)),
            rounds: session_rounds[k].iter().map(|r| encode_all(r.to_updates(1, None))).collect(),
            round_gap: spec.round_gap,
        };
        let stop = Arc::clone(&stop);
        clients.push(
            std::thread::Builder::new()
                .name(format!("xbgp-client-{k}"))
                .stack_size(256 * 1024)
                .spawn(move || client::run(addr, 65001, 1000 + k as u32, plan, &stop))
                .expect("spawn client"),
        );
    }

    // Wait until the daemons have absorbed exactly the logical stream.
    // Counter queries are barriers behind all frames already fanned in.
    let deadline = Instant::now() + Duration::from_secs(600);
    loop {
        let got = server.counters().routing_updates_rx();
        if got >= expected_updates {
            assert_eq!(got, expected_updates, "absorbed more updates than the stream carries");
            break;
        }
        assert!(Instant::now() < deadline, "stream stalled: {got}/{expected_updates} updates");
        std::thread::sleep(Duration::from_millis(20));
    }
    let elapsed = started.elapsed();

    // Sessions still up (clients hold until stop), RIBs quiescent.
    let established = server.established_sessions();
    let serve_rib = server.loc_rib();
    let oracle_mismatches = dump_diff(&serve_rib, &server.oracle_loc_rib());
    let snapshot = server.snapshot();
    let best_changes = snapshot
        .metrics
        .iter()
        .filter(|m| m.name == "xbgp_rib_best_changes_total")
        .map(|m| match m.value {
            MetricValue::Counter(n) => n,
            _ => 0,
        })
        .sum();
    let latency = server.latency();
    let rejected = server.rejected();

    stop.store(true, Ordering::SeqCst);
    for c in clients {
        let outcome = c.join().expect("client thread").expect("client io");
        assert!(!outcome.closed_early, "client session closed before the run finished");
    }
    server.shutdown();

    let parity_mismatches = if spec.check_parity {
        let ref_rib = reference_loc_rib(spec, &table, &rounds, expected_updates);
        dump_diff(&serve_rib, &ref_rib)
    } else {
        0
    };

    SelftestOutcome {
        established,
        updates_applied: expected_updates,
        expected_updates,
        best_changes,
        parity_mismatches,
        oracle_mismatches,
        loc_rib_len: serve_rib.len(),
        latency,
        elapsed,
        rejected,
    }
}

/// Replay the identical logical stream through the virtual-time harness:
/// one netsim feeder, one DUT, same attribute encoding (`next_hop = 1`,
/// no LOCAL_PREF). Returns the reference Loc-RIB.
fn reference_loc_rib(
    spec: &SelftestSpec,
    table: &[Route],
    rounds: &[ChurnRound],
    expected_updates: u64,
) -> Vec<(xbgp_wire::Ipv4Prefix, Vec<u8>)> {
    const SEC: u64 = 1_000_000_000;
    let frames = encode_all(to_updates(table, 1, None));
    let round_frames: Vec<Vec<Vec<u8>>> =
        rounds.iter().map(|r| encode_all(r.to_updates(1, None))).collect();

    let mut sim = Sim::new(SimConfig { cpu_accounting: false });
    let f = sim.add_node(Box::new(Feeder::new(65001, 1, frames).with_churn(
        round_frames,
        5 * SEC,
        SEC,
    )));
    let d = sim.add_node(Box::new(Placeholder));
    let l_up = sim.connect(f, d, 100_000);
    let dspec = DaemonSpec::new(65002, 2).neighbor(l_up, 1, 65001);
    sim.replace_node(d, Box::new(xbgp_harness::dut::build(spec.dut, dspec)));

    let mut deadline = 0u64;
    loop {
        deadline += 120 * SEC;
        sim.run_until(deadline);
        let got = sim.node_mut::<DutNode>(d).0.counters().routing_updates_rx();
        if got >= expected_updates {
            break;
        }
        assert!(deadline < 1_000_000 * SEC, "reference replay stalled: {got}/{expected_updates}");
    }
    sim.run_until(sim.now() + 60 * SEC);
    assert_eq!(
        sim.node_mut::<DutNode>(d).0.counters().routing_updates_rx(),
        expected_updates,
        "reference absorbed a different stream"
    );
    sim.node_mut::<DutNode>(d).0.loc_rib_dump()
}

struct Placeholder;
impl netsim::Node for Placeholder {
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}
