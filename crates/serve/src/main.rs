//! `xbgp-serve` — drive fir/wren over real TCP with many concurrent
//! peers.
//!
//! ```text
//! xbgp-serve selftest [--dut fir|wren|both] [--sessions N] [--routes N]
//!                     [--rounds N] [--shards N] [--seed N] [--gap-ms N]
//!                     [--json PATH]
//! xbgp-serve bench    [--out PATH]
//! xbgp-serve serve    [--dut fir|wren] [--port P] [--sessions N]
//!                     [--shards N]
//! ```

use std::time::Duration;

use xbgp_driver::Dut;
use xbgp_serve::bench;
use xbgp_serve::selftest::{self, SelftestOutcome, SelftestSpec};
use xbgp_serve::server::{ServeConfig, Server};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    let rest = &args[1.min(args.len())..];
    let code = match cmd {
        "selftest" => cmd_selftest(rest),
        "bench" => cmd_bench(rest),
        "serve" => cmd_serve(rest),
        "help" | "--help" | "-h" => {
            eprint!("{}", USAGE);
            0
        }
        other => {
            eprintln!("unknown command `{other}`\n{USAGE}");
            2
        }
    };
    std::process::exit(code);
}

const USAGE: &str = "\
usage: xbgp-serve <command> [options]

commands:
  selftest   run N loopback TCP peers against a daemon, check Loc-RIB
             parity vs the netsim replay and the full-recompute oracle
             --dut fir|wren|both (both)   --sessions N (64)
             --routes N (2000)            --rounds N (6)
             --shards N (1)               --seed N (42)
             --gap-ms N (0 = blast)       --json PATH (write summary)
  bench      run the peer-scaling grid, write BENCH_peer_scaling.json
             --out PATH (BENCH_peer_scaling.json)
             env: PEER_BENCH_SESSIONS, PEER_BENCH_GAPS_MS,
                  PEER_BENCH_ROUTES, PEER_BENCH_ROUNDS
  serve      hold a daemon open for external BGP speakers on loopback
             --dut fir|wren (fir)         --port P (1790)
             --sessions N (256)           --shards N (1)
";

fn flag(rest: &[String], name: &str) -> Option<String> {
    rest.iter().position(|a| a == name).and_then(|i| rest.get(i + 1)).cloned()
}

fn flag_parse<T: std::str::FromStr>(rest: &[String], name: &str, default: T) -> T
where
    T::Err: std::fmt::Display,
{
    match flag(rest, name) {
        Some(v) => v.parse().unwrap_or_else(|e| {
            eprintln!("bad value for {name}: {e}");
            std::process::exit(2);
        }),
        None => default,
    }
}

fn parse_duts(rest: &[String]) -> Vec<Dut> {
    match flag(rest, "--dut").as_deref() {
        None | Some("both") => vec![Dut::Fir, Dut::Wren],
        Some(s) => match s.parse() {
            Ok(d) => vec![d],
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        },
    }
}

fn cmd_selftest(rest: &[String]) -> i32 {
    let duts = parse_duts(rest);
    let sessions = flag_parse(rest, "--sessions", 64usize);
    let gap_ms = flag_parse(rest, "--gap-ms", 0u64);
    let mut outcomes: Vec<(Dut, SelftestSpec, SelftestOutcome)> = Vec::new();
    let mut ok = true;
    for dut in duts {
        let mut spec = SelftestSpec::new(dut, sessions);
        spec.routes = flag_parse(rest, "--routes", spec.routes);
        spec.rounds = flag_parse(rest, "--rounds", spec.rounds);
        spec.shards = flag_parse(rest, "--shards", spec.shards);
        spec.seed = flag_parse(rest, "--seed", spec.seed);
        spec.round_gap = (gap_ms > 0).then(|| Duration::from_millis(gap_ms));
        eprintln!(
            "selftest: dut={} sessions={} routes={} rounds={} shards={}",
            dut.slug(),
            spec.sessions,
            spec.routes,
            spec.rounds,
            spec.shards
        );
        let out = selftest::run(&spec);
        let passed = out.passed(&spec);
        eprintln!(
            "  established={}/{} updates={} best_changes={} parity_mismatches={} \
             oracle_mismatches={} p99_latency_us={} elapsed_ms={} -> {}",
            out.established,
            spec.sessions,
            out.updates_applied,
            out.best_changes,
            out.parity_mismatches,
            out.oracle_mismatches,
            out.latency.quantile(0.99) / 1_000,
            out.elapsed.as_millis(),
            if passed { "PASS" } else { "FAIL" }
        );
        ok &= passed;
        outcomes.push((dut, spec, out));
    }
    if let Some(path) = flag(rest, "--json") {
        let json = selftest_json(&outcomes);
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("cannot write {path}: {e}");
            return 1;
        }
    }
    if ok {
        0
    } else {
        1
    }
}

/// jq-friendly summary: one object per dut under `"runs"`.
fn selftest_json(outcomes: &[(Dut, SelftestSpec, SelftestOutcome)]) -> String {
    let mut s = String::from("{\n  \"runs\": [\n");
    for (i, (dut, spec, out)) in outcomes.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"dut\": \"{}\", \"sessions\": {}, \"established\": {}, \"routes\": {}, \
             \"rounds\": {}, \"shards\": {}, \"updates\": {}, \"best_changes\": {}, \
             \"parity_mismatches\": {}, \"oracle_mismatches\": {}, \"loc_rib_len\": {}, \
             \"p50_latency_ns\": {}, \"p99_latency_ns\": {}, \"elapsed_ms\": {}, \
             \"rejected\": {}, \"passed\": {}}}{}\n",
            dut.slug(),
            spec.sessions,
            out.established,
            spec.routes,
            spec.rounds,
            spec.shards,
            out.updates_applied,
            out.best_changes,
            out.parity_mismatches,
            out.oracle_mismatches,
            out.loc_rib_len,
            out.latency.quantile(0.50),
            out.latency.quantile(0.99),
            out.elapsed.as_millis(),
            out.rejected,
            out.passed(spec),
            if i + 1 == outcomes.len() { "" } else { "," },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

fn cmd_bench(rest: &[String]) -> i32 {
    let out_path = flag(rest, "--out").unwrap_or_else(|| "BENCH_peer_scaling.json".into());
    let date = flag(rest, "--date").unwrap_or_else(|| "unknown".into());
    let cells = bench::run_grid();
    let json = bench::to_json(&cells, &date);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        return 1;
    }
    eprintln!("wrote {} cells to {out_path}", cells.len());
    0
}

fn cmd_serve(rest: &[String]) -> i32 {
    let dut: Dut = flag(rest, "--dut").map_or(Dut::Fir, |s| {
        s.parse().unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        })
    });
    let mut cfg = ServeConfig::new(dut, flag_parse(rest, "--sessions", 256usize));
    cfg.shards = flag_parse(rest, "--shards", 1usize);
    cfg.bind_port = flag_parse(rest, "--port", 1790u16);
    let server = match Server::start(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot start server: {e}");
            return 1;
        }
    };
    eprintln!("xbgp-serve: {} listening on {}", dut.slug(), server.addr());
    loop {
        std::thread::sleep(Duration::from_secs(10));
        let c = server.counters();
        eprintln!(
            "sessions={} updates_rx={} prefixes_rx={} withdrawals_rx={}",
            server.established_sessions(),
            c.updates_rx,
            c.prefixes_rx,
            c.withdrawals_rx
        );
    }
}
