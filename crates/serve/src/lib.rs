//! # xbgp-serve — many-peer TCP runtime for the xBGP daemons
//!
//! The netsim harnesses drive fir and wren in virtual time; this crate
//! drives the **same daemons, unmodified,** over real TCP sockets with
//! hundreds of concurrent peers. The daemon never learns it left the
//! simulator: it still lives single-threaded behind
//! [`netsim::NodeDriver`], configured through the same
//! [`xbgp_driver::DaemonSpec`], and speaks wire frames over `LinkId`s
//! that now mean session slots instead of simulated cables.
//!
//! Layer map (one thread per box, wire frames on every edge):
//!
//! * [`server`] — accept loop + per-session threads; each session runs a
//!   real BGP FSM ([`xbgp_wire::Session`]: OPEN/KEEPALIVE/NOTIFICATION,
//!   hold-timer enforcement, NOTIFY-and-close on malformed input).
//! * [`daemon_core`] — one daemon per shard core on a `NodeDriver`,
//!   owning a disjoint prefix slice; sessions fan validated UPDATE
//!   frames in over mpsc channels, best-path changes fan back out.
//! * [`split`] — cuts UPDATE frames along prefix-hash shard boundaries
//!   without re-encoding attribute bytes.
//! * [`client`] — loopback test peers; [`selftest`] — end-to-end parity
//!   harness (TCP Loc-RIB ≡ netsim-replay Loc-RIB ≡ oracle);
//!   [`bench`] — the peer-scaling grid behind `BENCH_peer_scaling.json`.

pub mod bench;
pub mod client;
pub mod daemon_core;
pub mod selftest;
pub mod server;
pub mod split;

pub use client::{ClientOutcome, ClientPlan};
pub use selftest::{SelftestOutcome, SelftestSpec};
pub use server::{ServeConfig, Server};
pub use split::split_update;
