//! Split UPDATE frames across prefix-hash shards.
//!
//! Best-route selection is independent per prefix, so an UPDATE that
//! touches prefixes owned by different shard cores can be cut into one
//! frame per core. The attribute section is copied **verbatim** — the
//! split must never re-encode attributes, because the Loc-RIB parity
//! checks compare attribute bytes across transports and shard counts.
//! Only the withdrawn-routes and NLRI prefix runs are re-packed.

use xbgp_harness::shard::shard_of;
use xbgp_wire::msg::{deframe, frame};
use xbgp_wire::{Ipv4Prefix, MsgType, WireError};

/// Cut one complete UPDATE frame into per-shard frames. Entry `k` is the
/// frame for shard `k`, or `None` when the UPDATE touches none of its
/// prefixes. `shards <= 1` returns the input untouched (bit-exact), so a
/// single-core run never re-frames anything.
///
/// A shard that only withdraws carries an empty attribute section; a
/// shard that announces carries the original attribute bytes unchanged.
pub fn split_update(frame_bytes: &[u8], shards: usize) -> Result<Vec<Option<Vec<u8>>>, WireError> {
    if shards <= 1 {
        return Ok(vec![Some(frame_bytes.to_vec())]);
    }
    let (ty, body) = deframe(frame_bytes)?;
    debug_assert_eq!(ty, MsgType::Update, "only UPDATE frames are sharded");

    if body.len() < 2 {
        return Err(WireError::Truncated { what: "UPDATE withdrawn length" });
    }
    let wd_len = usize::from(u16::from_be_bytes([body[0], body[1]]));
    if body.len() < 2 + wd_len + 2 {
        return Err(WireError::Truncated { what: "UPDATE withdrawn routes" });
    }
    let withdrawn = Ipv4Prefix::decode_run(&body[2..2 + wd_len])?;
    let at = 2 + wd_len;
    let attr_len = usize::from(u16::from_be_bytes([body[at], body[at + 1]]));
    if body.len() < at + 2 + attr_len {
        return Err(WireError::Truncated { what: "UPDATE path attributes" });
    }
    let attrs_raw = &body[at + 2..at + 2 + attr_len];
    let nlri = Ipv4Prefix::decode_run(&body[at + 2 + attr_len..])?;

    let mut wd_parts: Vec<Vec<Ipv4Prefix>> = vec![Vec::new(); shards];
    let mut nlri_parts: Vec<Vec<Ipv4Prefix>> = vec![Vec::new(); shards];
    for p in withdrawn {
        wd_parts[shard_of(&p, shards)].push(p);
    }
    for p in nlri {
        nlri_parts[shard_of(&p, shards)].push(p);
    }

    let mut out = Vec::with_capacity(shards);
    for k in 0..shards {
        if wd_parts[k].is_empty() && nlri_parts[k].is_empty() {
            out.push(None);
            continue;
        }
        let mut part = Vec::new();
        let mut wd = Vec::new();
        for p in &wd_parts[k] {
            p.encode(&mut wd);
        }
        part.extend_from_slice(&(wd.len() as u16).to_be_bytes());
        part.extend_from_slice(&wd);
        if nlri_parts[k].is_empty() {
            part.extend_from_slice(&0u16.to_be_bytes());
        } else {
            part.extend_from_slice(&(attrs_raw.len() as u16).to_be_bytes());
            part.extend_from_slice(attrs_raw);
            for p in &nlri_parts[k] {
                p.encode(&mut part);
            }
        }
        out.push(Some(frame(MsgType::Update, &part)?));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbgp_wire::{Message, UpdateMsg};

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn single_shard_is_bit_exact_passthrough() {
        let f = Message::Update(UpdateMsg::withdraw(vec![p("10.0.0.0/24")])).encode(4).unwrap();
        let parts = split_update(&f, 1).unwrap();
        assert_eq!(parts, vec![Some(f)]);
    }

    #[test]
    fn split_partitions_prefixes_and_preserves_attr_bytes() {
        let routes = routegen::generate(&routegen::TableSpec::new(200, 3));
        let shards = 4;
        for u in routegen::to_updates(&routes, 1, None) {
            let original = Message::Update(u.clone()).encode(4).unwrap();
            let parts = split_update(&original, shards).unwrap();
            assert_eq!(parts.len(), shards);
            let mut seen = 0usize;
            for (k, part) in parts.iter().enumerate() {
                let Some(bytes) = part else { continue };
                let Message::Update(pu) = Message::decode(bytes, 4).unwrap() else {
                    panic!("split produced a non-UPDATE");
                };
                assert!(pu.withdrawn.iter().all(|q| shard_of(q, shards) == k));
                assert!(pu.nlri.iter().all(|q| shard_of(q, shards) == k));
                // Attribute section verbatim: decoded attrs identical.
                if !pu.nlri.is_empty() {
                    assert_eq!(pu.attrs, u.attrs);
                    let ob = xbgp_wire::UpdateMsg::attr_section(
                        xbgp_wire::msg::deframe(&original).unwrap().1,
                    )
                    .unwrap();
                    let pb = xbgp_wire::UpdateMsg::attr_section(
                        xbgp_wire::msg::deframe(bytes).unwrap().1,
                    )
                    .unwrap();
                    assert_eq!(ob, pb, "raw attribute bytes must survive the split");
                }
                seen += pu.withdrawn.len() + pu.nlri.len();
            }
            assert_eq!(seen, u.withdrawn.len() + u.nlri.len(), "no prefix lost or duplicated");
        }
    }

    #[test]
    fn withdraw_only_updates_split_without_attrs() {
        let prefixes: Vec<Ipv4Prefix> = (0..64u32)
            .map(|i| format!("10.{}.{}.0/24", i / 8, i % 8).parse().unwrap())
            .collect();
        let f = Message::Update(UpdateMsg::withdraw(prefixes.clone())).encode(4).unwrap();
        let parts = split_update(&f, 3).unwrap();
        let mut total = 0usize;
        for part in parts.into_iter().flatten() {
            let Message::Update(u) = Message::decode(&part, 4).unwrap() else {
                unreachable!()
            };
            assert!(u.attrs.is_empty() && u.nlri.is_empty());
            total += u.withdrawn.len();
        }
        assert_eq!(total, prefixes.len());
    }
}
