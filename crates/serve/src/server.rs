//! The TCP runtime: accept loop, per-session threads, shard cores.
//!
//! Layering (one box per thread):
//!
//! ```text
//!   accept loop ── spawns ──▶ session thread (per TCP peer)
//!                               │  xbgp_wire::Session — real BGP FSM,
//!                               │  hold timer, NOTIFY-and-close
//!                               │
//!                               │ CoreMsg over mpsc (wire frames)
//!                               ▼
//!                             shard core(s) — daemon on a NodeDriver
//!                               │
//!                               │ outbox mpsc (UPDATE frames out)
//!                               ▼
//!                             session thread writes to the socket
//! ```
//!
//! The daemon is never touched from more than one thread; sessions speak
//! to it exclusively in wire frames. With `shards > 1` each UPDATE is cut
//! along prefix-hash boundaries by [`crate::split::split_update`] and
//! each piece goes to the core that owns those prefixes.

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use xbgp_driver::{DaemonCounters, Dut};
use xbgp_obs::{Histogram, HistogramSnapshot, Snapshot};
use xbgp_wire::{Ipv4Prefix, Session, SessionConfig, SessionEvent};

use crate::daemon_core::{self, CoreConfig, CoreMsg, Query};
use crate::split::split_update;

/// Maximum frames per write burst between inbound drains (see the
/// deadlock note in [`crate::client`]).
const WRITE_BURST: usize = 32;

/// Runtime configuration for one [`Server`].
#[derive(Clone)]
pub struct ServeConfig {
    pub dut: Dut,
    /// Our ASN (the daemon's).
    pub asn: u32,
    pub router_id: u32,
    /// ASN every peer must present in its OPEN.
    pub peer_asn: u32,
    /// Maximum concurrent sessions; later connections are dropped.
    pub max_sessions: usize,
    /// Shard cores. 1 = single daemon owning the whole table.
    pub shards: usize,
    /// Hold time we offer peers (real wall-clock liveness at the edge).
    pub hold_time_secs: u16,
    /// Enable daemon timing instrumentation.
    pub metrics: bool,
    /// Loopback port to listen on; 0 = ephemeral.
    pub bind_port: u16,
}

impl ServeConfig {
    pub fn new(dut: Dut, max_sessions: usize) -> ServeConfig {
        ServeConfig {
            dut,
            asn: 65002,
            router_id: 2,
            peer_asn: 65001,
            max_sessions,
            shards: 1,
            hold_time_secs: 90,
            metrics: false,
            bind_port: 0,
        }
    }
}

struct Shared {
    cfg: ServeConfig,
    cores: Vec<Sender<CoreMsg>>,
    free_slots: Mutex<Vec<usize>>,
    stop: AtomicBool,
    epoch: Instant,
    latency: Arc<Histogram>,
    /// Peak concurrent edge-established sessions (for reporting).
    established_peak: AtomicU64,
    established_now: AtomicU64,
    rejected: AtomicU64,
}

/// A running many-peer runtime: owns the listener, the accept thread,
/// every session thread, and one core thread per shard.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    cores: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind a loopback listener and bring the full runtime up.
    pub fn start(cfg: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(("127.0.0.1", cfg.bind_port))?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let epoch = Instant::now();
        let latency = Arc::new(Histogram::new());
        let mut cores = Vec::new();
        let mut core_handles = Vec::new();
        for shard in 0..cfg.shards.max(1) {
            let (tx, rx) = mpsc::channel();
            let core_cfg = CoreConfig {
                dut: cfg.dut,
                asn: cfg.asn,
                // Distinct router ids keep shard daemons distinguishable
                // in traces; parity checks never compare router ids.
                router_id: cfg.router_id + shard as u32,
                peer_asn: cfg.peer_asn,
                slots: cfg.max_sessions,
                metrics: cfg.metrics,
            };
            core_handles.push(daemon_core::spawn(core_cfg, rx, Arc::clone(&latency), epoch));
            cores.push(tx);
        }

        let shared = Arc::new(Shared {
            free_slots: Mutex::new((0..cfg.max_sessions).rev().collect()),
            cfg,
            cores,
            stop: AtomicBool::new(false),
            epoch,
            latency,
            established_peak: AtomicU64::new(0),
            established_now: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        });

        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("xbgp-accept".into())
                .spawn(move || accept_loop(listener, shared))
                .expect("spawn accept thread")
        };

        Ok(Server { shared, addr, accept: Some(accept), cores: core_handles })
    }

    /// Address peers connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Sum of daemon counters across shard cores.
    pub fn counters(&self) -> DaemonCounters {
        let mut total = DaemonCounters::default();
        for core in &self.shared.cores {
            let (tx, rx) = mpsc::channel();
            let _ = core.send(CoreMsg::Query(Query::Counters(tx)));
            if let Ok(c) = rx.recv() {
                total.updates_rx += c.updates_rx;
                total.prefixes_rx += c.prefixes_rx;
                total.withdrawals_rx += c.withdrawals_rx;
                total.updates_tx += c.updates_tx;
                total.prefixes_tx += c.prefixes_tx;
                total.withdrawals_tx += c.withdrawals_tx;
                total.sessions_established += c.sessions_established;
            }
        }
        total
    }

    /// Merged metrics snapshot across shard cores.
    pub fn snapshot(&self) -> Snapshot {
        let mut merged = Snapshot::new();
        for core in &self.shared.cores {
            let (tx, rx) = mpsc::channel();
            let _ = core.send(CoreMsg::Query(Query::Snapshot(tx)));
            if let Ok(s) = rx.recv() {
                let _ = merged.merge(s);
            }
        }
        merged
    }

    /// Combined Loc-RIB across shards, sorted by prefix. Shards own
    /// disjoint prefix sets, so concatenation is exact.
    pub fn loc_rib(&self) -> Vec<(Ipv4Prefix, Vec<u8>)> {
        self.rib_query(Query::LocRib)
    }

    /// Combined oracle Loc-RIB across shards, sorted by prefix.
    pub fn oracle_loc_rib(&self) -> Vec<(Ipv4Prefix, Vec<u8>)> {
        self.rib_query(Query::OracleLocRib)
    }

    fn rib_query(
        &self,
        make: impl Fn(Sender<Vec<(Ipv4Prefix, Vec<u8>)>>) -> Query,
    ) -> Vec<(Ipv4Prefix, Vec<u8>)> {
        let mut all = Vec::new();
        for core in &self.shared.cores {
            let (tx, rx) = mpsc::channel();
            let _ = core.send(CoreMsg::Query(make(tx)));
            if let Ok(mut rib) = rx.recv() {
                all.append(&mut rib);
            }
        }
        all.sort_by_key(|(p, _)| *p);
        all
    }

    /// Sessions the *daemons* consider established (max across shards —
    /// every shard sees the same session slots).
    pub fn established_sessions(&self) -> usize {
        let mut most = 0;
        for core in &self.shared.cores {
            let (tx, rx) = mpsc::channel();
            let _ = core.send(CoreMsg::Query(Query::EstablishedSlots(tx)));
            if let Ok(n) = rx.recv() {
                most = most.max(n);
            }
        }
        most
    }

    /// Peak concurrent sessions the edge FSMs reached Established.
    pub fn established_peak(&self) -> u64 {
        self.shared.established_peak.load(Ordering::Relaxed)
    }

    /// Connections dropped because all session slots were taken.
    pub fn rejected(&self) -> u64 {
        self.shared.rejected.load(Ordering::Relaxed)
    }

    /// Socket-to-RIB propagation latency histogram (ns).
    pub fn latency(&self) -> HistogramSnapshot {
        self.shared.latency.snapshot()
    }

    /// Stop accepting, close cores, join all runtime threads. Session
    /// threads exit on their own when peers disconnect or their reads
    /// time out against the stop flag.
    pub fn shutdown(mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // Give lingering sessions a moment to observe the stop flag and
        // send their SessionDown before the cores go away.
        let deadline = Instant::now() + Duration::from_secs(2);
        while self.shared.established_now.load(Ordering::Relaxed) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        for core in &self.shared.cores {
            let _ = core.send(CoreMsg::Shutdown);
        }
        for h in self.cores.drain(..) {
            let _ = h.join();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    while !shared.stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let slot = shared.free_slots.lock().expect("slot lock").pop();
                match slot {
                    Some(slot) => {
                        let shared = Arc::clone(&shared);
                        let _ = std::thread::Builder::new()
                            .name(format!("xbgp-sess-{slot}"))
                            .stack_size(256 * 1024)
                            .spawn(move || session_thread(stream, slot, shared));
                    }
                    None => {
                        shared.rejected.fetch_add(1, Ordering::Relaxed);
                        drop(stream);
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
}

/// One TCP peer: run the edge FSM against the socket, fan validated
/// UPDATE frames into the shard cores, write core outbox frames back.
fn session_thread(mut stream: TcpStream, slot: usize, shared: Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(2)));

    let now = |shared: &Shared| shared.epoch.elapsed().as_nanos() as u64;
    let mut fsm = Session::new(SessionConfig {
        local_asn: shared.cfg.asn,
        router_id: shared.cfg.router_id,
        hold_time_secs: shared.cfg.hold_time_secs,
        expect_asn: Some(shared.cfg.peer_asn),
    });
    let (outbox_tx, outbox_rx) = mpsc::channel::<Vec<u8>>();
    let mut up = false;
    let mut buf = [0u8; 16 * 1024];
    let mut alive = true;
    // Frames validated by the FSM this wakeup, flushed to cores in batch.
    let mut updates: Vec<Vec<u8>> = Vec::new();
    let mut recv_ns = 0u64;
    let mut write_backlog: VecDeque<Vec<u8>> = VecDeque::new();

    for ev in fsm.start(now(&shared)) {
        if let SessionEvent::Send(bytes) = ev {
            if stream.write_all(&bytes).is_err() {
                alive = false;
            }
        }
    }

    'session: while alive {
        // Drain inbound to empty before writing — see the deadlock note
        // in [`crate::client`]; the same two rules apply on this side.
        let mut events = Vec::new();
        loop {
            match stream.read(&mut buf) {
                Ok(0) => break 'session,
                Ok(n) => {
                    if events.is_empty() {
                        recv_ns = now(&shared);
                    }
                    events.extend(fsm.on_bytes(recv_ns, &buf[..n]));
                }
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => break 'session,
            }
        }
        events.extend(fsm.tick(now(&shared)));
        if shared.stop.load(Ordering::Relaxed)
            && !matches!(fsm.state(), xbgp_wire::SessionState::Closed)
        {
            events.extend(fsm.shutdown());
        }

        for ev in events {
            match ev {
                SessionEvent::Send(bytes) => {
                    if stream.write_all(&bytes).is_err() {
                        break 'session;
                    }
                }
                SessionEvent::Established { .. } => {
                    for core in &shared.cores {
                        let _ = core.send(CoreMsg::SessionUp { slot, outbox: outbox_tx.clone() });
                    }
                    up = true;
                    shared.established_now.fetch_add(1, Ordering::Relaxed);
                    let n = shared.established_now.load(Ordering::Relaxed);
                    shared.established_peak.fetch_max(n, Ordering::Relaxed);
                }
                SessionEvent::Update(frame) => updates.push(frame),
                SessionEvent::Closed(_) => {
                    // NOTIFICATION (if any) was already emitted as Send.
                    alive = false;
                }
            }
        }

        if !updates.is_empty() && up {
            fan_out(&shared, slot, std::mem::take(&mut updates), recv_ns);
        }
        updates.clear();

        // Drain the core outbox into a local queue, then write a bounded
        // burst — the same anti-deadlock rule the client follows.
        while let Ok(frame) = outbox_rx.try_recv() {
            write_backlog.push_back(frame);
        }
        for _ in 0..WRITE_BURST {
            let Some(frame) = write_backlog.pop_front() else {
                break;
            };
            if stream.write_all(&frame).is_err() {
                break 'session;
            }
        }
    }

    if up {
        shared.established_now.fetch_sub(1, Ordering::Relaxed);
        for core in &shared.cores {
            let _ = core.send(CoreMsg::SessionDown { slot });
        }
    }
    let _ = stream.shutdown(std::net::Shutdown::Both);
    shared.free_slots.lock().expect("slot lock").push(slot);
}

/// Send a batch of validated UPDATE frames to the core(s) that own their
/// prefixes, preserving per-prefix arrival order.
fn fan_out(shared: &Shared, slot: usize, frames: Vec<Vec<u8>>, recv_ns: u64) {
    let shards = shared.cores.len();
    if shards == 1 {
        let _ = shared.cores[0].send(CoreMsg::Frames { slot, frames, recv_ns });
        return;
    }
    let mut per_shard: Vec<Vec<Vec<u8>>> = vec![Vec::new(); shards];
    for frame in &frames {
        match split_update(frame, shards) {
            Ok(parts) => {
                for (k, part) in parts.into_iter().enumerate() {
                    if let Some(p) = part {
                        per_shard[k].push(p);
                    }
                }
            }
            // The FSM already validated the frame; a split error here
            // would be a codec bug — drop the frame rather than poison a
            // shard with half an UPDATE.
            Err(_) => continue,
        }
    }
    for (k, frames) in per_shard.into_iter().enumerate() {
        if !frames.is_empty() {
            let _ = shared.cores[k].send(CoreMsg::Frames { slot, frames, recv_ns });
        }
    }
}
