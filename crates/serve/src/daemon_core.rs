//! The shard core: one daemon on a [`netsim::NodeDriver`], fed by the
//! session tasks over an mpsc channel.
//!
//! Each core owns a complete single-threaded daemon (fir or wren, behind
//! the [`xbgp_driver::Daemon`] seam) with one neighbor slot per session,
//! numbered `LinkId(0)..LinkId(slots)`. Session tasks never touch the
//! daemon — they send [`CoreMsg`]s; the core thread is the only place
//! the `Rc`-based daemon state lives.
//!
//! Session liveness belongs to the edge FSMs ([`xbgp_wire::Session`]),
//! not the daemon: when a session establishes, the core injects a
//! synthetic OPEN carrying the configured neighbor ASN and **hold time
//! 0**, so the daemon negotiates liveness off and never arms hold or
//! keepalive timers. The daemon's own handshake frames (OPEN, KEEPALIVE)
//! are consumed at the core boundary; only UPDATE and NOTIFICATION
//! frames fan back out to the sockets.

use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use netsim::{LinkId, NodeDriver};
use xbgp_driver::{DaemonCounters, DaemonSpec, Dut, DutNode};
use xbgp_obs::{Histogram, Snapshot};
use xbgp_wire::msg::deframe;
use xbgp_wire::{Ipv4Prefix, Message, MsgReader, MsgType, OpenMsg};

/// Neighbor address of session slot `slot` in the daemon's config — the
/// identity [`xbgp_driver::Daemon::session_established`] is queried by.
pub fn slot_addr(slot: usize) -> u32 {
    0x0a00_0001 + slot as u32
}

/// What a session task asks of a shard core.
pub enum CoreMsg {
    /// The edge FSM reached Established: bring the daemon's session slot
    /// up and register where outbound frames for this session go.
    SessionUp {
        slot: usize,
        outbox: Sender<Vec<u8>>,
    },
    /// Validated UPDATE frames from one session, in arrival order.
    /// `recv_ns` is the runtime clock when the bytes left the socket —
    /// the start of the propagation-latency measurement.
    Frames {
        slot: usize,
        frames: Vec<Vec<u8>>,
        recv_ns: u64,
    },
    /// The session closed: tear the daemon's slot down (flushes its
    /// routes and withdraws them from every other session).
    SessionDown {
        slot: usize,
    },
    Query(Query),
    Shutdown,
}

/// Synchronous inspection requests; the reply channel makes them act as
/// barriers behind all previously queued frames.
pub enum Query {
    Counters(Sender<DaemonCounters>),
    Snapshot(Sender<Snapshot>),
    LocRib(Sender<Vec<(Ipv4Prefix, Vec<u8>)>>),
    OracleLocRib(Sender<Vec<(Ipv4Prefix, Vec<u8>)>>),
    /// How many session slots the *daemon* (not the edge) sees established.
    EstablishedSlots(Sender<usize>),
}

/// Static description of one shard core.
#[derive(Clone)]
pub struct CoreConfig {
    pub dut: Dut,
    pub asn: u32,
    pub router_id: u32,
    /// ASN every session's synthetic OPEN carries; all neighbor slots are
    /// configured with it.
    pub peer_asn: u32,
    /// Session slots (= max concurrent sessions).
    pub slots: usize,
    /// Enable the daemon's timing instrumentation.
    pub metrics: bool,
}

/// Spawn one shard core thread. `latency` receives one observation per
/// delivered UPDATE frame: runtime-clock ns from socket read to the
/// daemon having applied it (queue wait + decode + RIB work).
pub fn spawn(
    cfg: CoreConfig,
    rx: Receiver<CoreMsg>,
    latency: Arc<Histogram>,
    epoch: Instant,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("xbgp-core-{}", cfg.router_id))
        .spawn(move || run(cfg, rx, latency, epoch))
        .expect("spawn core thread")
}

fn run(cfg: CoreConfig, rx: Receiver<CoreMsg>, latency: Arc<Histogram>, epoch: Instant) {
    let mut spec = DaemonSpec::new(cfg.asn, cfg.router_id);
    // The daemon proposes hold 0 too; either side's zero wins negotiation.
    spec.hold_time_secs = 0;
    spec.metrics = cfg.metrics;
    for slot in 0..cfg.slots {
        spec = spec.neighbor(LinkId(slot), slot_addr(slot), cfg.peer_asn);
    }
    let node = xbgp_harness::dut::build(cfg.dut, spec);
    let mut driver = NodeDriver::new(Box::new(node), cfg.slots);

    let now = move || epoch.elapsed().as_nanos() as u64;
    let mut outboxes: Vec<Option<Sender<Vec<u8>>>> = vec![None; cfg.slots];
    let mut readers: Vec<MsgReader> = (0..cfg.slots).map(|_| MsgReader::new()).collect();
    // Slots that have been through at least one session: a later reuse
    // needs a link-up event to push the daemon's FSM out of Idle again.
    let mut used = vec![false; cfg.slots];

    driver.start(now());
    flush(&mut driver, &mut readers, &outboxes);

    while let Ok(msg) = rx.recv() {
        match msg {
            CoreMsg::SessionUp { slot, outbox } => {
                outboxes[slot] = Some(outbox);
                if used[slot] {
                    driver.link_event(now(), LinkId(slot), true);
                }
                used[slot] = true;
                let open = OpenMsg::standard(cfg.peer_asn, 0, slot_addr(slot));
                let open = Message::Open(open).encode(4).expect("OPEN encodes");
                driver.deliver(now(), LinkId(slot), &open);
                let ka = Message::Keepalive.encode(4).expect("KEEPALIVE encodes");
                driver.deliver(now(), LinkId(slot), &ka);
            }
            CoreMsg::Frames { slot, frames, recv_ns } => {
                for f in &frames {
                    driver.deliver(now(), LinkId(slot), f);
                    latency.observe(now().saturating_sub(recv_ns));
                }
            }
            CoreMsg::SessionDown { slot } => {
                outboxes[slot] = None;
                driver.link_event(now(), LinkId(slot), false);
            }
            CoreMsg::Query(q) => {
                // Replies may race a caller that gave up; ignore send errors.
                match q {
                    Query::Counters(tx) => {
                        let _ = tx.send(driver.node_mut::<DutNode>().0.counters());
                    }
                    Query::Snapshot(tx) => {
                        let _ = tx.send(driver.node_mut::<DutNode>().0.metrics_snapshot());
                    }
                    Query::LocRib(tx) => {
                        let _ = tx.send(driver.node_mut::<DutNode>().0.loc_rib_dump());
                    }
                    Query::OracleLocRib(tx) => {
                        let _ = tx.send(driver.node_mut::<DutNode>().0.oracle_loc_rib_dump());
                    }
                    Query::EstablishedSlots(tx) => {
                        let d = driver.node_mut::<DutNode>();
                        let n = (0..cfg.slots)
                            .filter(|&s| d.0.session_established(slot_addr(s)))
                            .count();
                        let _ = tx.send(n);
                    }
                }
            }
            CoreMsg::Shutdown => break,
        }
        flush(&mut driver, &mut readers, &outboxes);
    }
}

/// Route everything the daemon emitted: UPDATE and NOTIFICATION frames go
/// to the owning session's outbox (if one is registered); the daemon's
/// own handshake frames are consumed here — the edge FSM already ran the
/// real handshake on the wire.
fn flush(driver: &mut NodeDriver, readers: &mut [MsgReader], outboxes: &[Option<Sender<Vec<u8>>>]) {
    for (link, bytes) in driver.drain_outbound() {
        let slot = link.0;
        readers[slot].push(&bytes);
        while let Ok(Some(frame)) = readers[slot].next_frame() {
            let forward = matches!(
                deframe(&frame),
                Ok((MsgType::Update, _)) | Ok((MsgType::Notification, _))
            );
            if forward {
                if let Some(tx) = &outboxes[slot] {
                    // A dropped receiver means the session died mid-flush;
                    // SessionDown will tear the slot shortly.
                    let _ = tx.send(frame);
                }
            }
        }
    }
}
