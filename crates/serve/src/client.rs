//! Loopback BGP client used by the selftest and the peer-scaling bench.
//!
//! Each client owns one TCP connection and its own [`xbgp_wire::Session`]
//! FSM (the handshake is symmetric, so edge-vs-edge works). After
//! Established it pushes its assigned UPDATE frames — optionally paced —
//! and then **stays connected** until told to stop: disconnecting early
//! would make the daemon tear the slot down and flush the routes this
//! client announced, destroying Loc-RIB parity.
//!
//! Two rules keep hundreds of concurrent blasting sessions deadlock-free
//! without nonblocking writes:
//!
//! 1. inbound is drained to empty before every write burst (the server
//!    fans each best-path change to every established peer; a client that
//!    stops reading eventually stalls TCP in both directions), and
//! 2. write bursts are bounded ([`WRITE_BURST`] frames), so neither side
//!    ever sits in a `write_all` larger than the loopback socket buffers
//!    while the peer is doing the same.

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use xbgp_wire::{Session, SessionConfig, SessionEvent, SessionState};

/// Maximum frames per write burst between inbound drains.
const WRITE_BURST: usize = 32;

/// What one client pushes after establishing.
pub struct ClientPlan {
    /// UPDATE frames carrying the initial table slice.
    pub initial: Vec<Vec<u8>>,
    /// Per-round UPDATE frames (the churn storm), sent in order.
    pub rounds: Vec<Vec<Vec<u8>>>,
    /// Wall-clock pause between rounds; `None` = blast as fast as TCP
    /// accepts.
    pub round_gap: Option<Duration>,
}

/// Outcome of one client's run.
#[derive(Debug, Default, Clone, Copy)]
pub struct ClientOutcome {
    pub established: bool,
    pub frames_sent: u64,
    /// UPDATE frames received back from the server (its Adj-RIB-Out fan).
    pub frames_rx: u64,
    /// The session closed before `stop` was raised.
    pub closed_early: bool,
}

/// Connect, handshake, push the plan, then hold the session open until
/// `stop` flips. Returns what happened for assertions upstream.
pub fn run(
    addr: SocketAddr,
    asn: u32,
    router_id: u32,
    plan: ClientPlan,
    stop: &AtomicBool,
) -> std::io::Result<ClientOutcome> {
    let mut stream = connect_with_retry(addr, Duration::from_secs(10))?;
    let _ = stream.set_nodelay(true);
    stream.set_read_timeout(Some(Duration::from_millis(1)))?;

    let epoch = Instant::now();
    let now = move || epoch.elapsed().as_nanos() as u64;
    let mut fsm = Session::new(SessionConfig {
        local_asn: asn,
        router_id,
        hold_time_secs: 90,
        expect_asn: None,
    });
    let mut out = ClientOutcome::default();

    for ev in fsm.start(now()) {
        if let SessionEvent::Send(bytes) = ev {
            stream.write_all(&bytes)?;
        }
    }

    let mut buf = [0u8; 16 * 1024];
    let mut pending: VecDeque<Vec<u8>> = VecDeque::new();
    let mut loaded_initial = false;
    let mut next_round = 0usize;
    let mut next_round_at = Instant::now();

    'conn: loop {
        // Drain inbound to empty before doing anything else.
        let mut events = Vec::new();
        loop {
            match stream.read(&mut buf) {
                Ok(0) => {
                    out.closed_early = !stop.load(Ordering::Relaxed);
                    break 'conn;
                }
                Ok(n) => events.extend(fsm.on_bytes(now(), &buf[..n])),
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        events.extend(fsm.tick(now()));

        let mut closed = false;
        for ev in events {
            match ev {
                SessionEvent::Send(bytes) => stream.write_all(&bytes)?,
                SessionEvent::Established { .. } => out.established = true,
                SessionEvent::Update(_) => out.frames_rx += 1,
                SessionEvent::Closed(_) => closed = true,
            }
        }
        if closed {
            out.closed_early = !stop.load(Ordering::Relaxed);
            break;
        }

        if out.established && !loaded_initial {
            pending.extend(plan.initial.iter().cloned());
            loaded_initial = true;
            next_round_at = Instant::now();
        }
        if loaded_initial
            && pending.is_empty()
            && next_round < plan.rounds.len()
            && Instant::now() >= next_round_at
        {
            pending.extend(plan.rounds[next_round].iter().cloned());
            next_round += 1;
            if let Some(gap) = plan.round_gap {
                next_round_at = Instant::now() + gap;
            }
        }

        for _ in 0..WRITE_BURST {
            let Some(frame) = pending.pop_front() else {
                break;
            };
            stream.write_all(&frame)?;
            out.frames_sent += 1;
        }

        if stop.load(Ordering::Relaxed) {
            if !matches!(fsm.state(), SessionState::Closed) {
                for ev in fsm.shutdown() {
                    if let SessionEvent::Send(bytes) = ev {
                        let _ = stream.write_all(&bytes);
                    }
                }
            }
            break;
        }
    }

    let _ = stream.shutdown(std::net::Shutdown::Both);
    Ok(out)
}

fn connect_with_retry(addr: SocketAddr, timeout: Duration) -> std::io::Result<TcpStream> {
    let deadline = Instant::now() + timeout;
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) if Instant::now() >= deadline => return Err(e),
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}
