//! ROA file loading.
//!
//! The paper's DUT "does not implement the RPKI-Rtr protocol but loads a
//! file" of validated ROAs (§3.4). This module parses the de-facto
//! standard CSV export format used by RPKI validators (Routinator,
//! `rpki-client -c`, the RIPE validator):
//!
//! ```csv
//! ASN,IP Prefix,Max Length,Trust Anchor
//! AS13335,1.0.0.0/24,24,apnic
//! AS65001,10.0.0.0/8,16,test
//! ```
//!
//! The trailing trust-anchor column is optional and ignored, comment
//! lines (`#`) and a header line are tolerated, and the `AS` prefix on
//! the ASN is optional.

use crate::Roa;
use std::fmt;
use xbgp_wire::Ipv4Prefix;

/// A parse failure with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoaFileError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for RoaFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ROA file line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for RoaFileError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, RoaFileError> {
    Err(RoaFileError { line, message: message.into() })
}

/// Parse validator-CSV text into ROAs. IPv6 rows are skipped (this
/// workspace is IPv4-only, like the paper's experiment).
pub fn parse_roa_csv(text: &str) -> Result<Vec<Roa>, RoaFileError> {
    let mut out = Vec::new();
    for (lineno0, raw) in text.lines().enumerate() {
        let lineno = lineno0 + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // Tolerate a header row.
        if lineno == 1 && line.to_ascii_lowercase().contains("prefix") {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() < 3 {
            return err(lineno, format!("expected `ASN,prefix,maxlen[,ta]`, got `{line}`"));
        }
        let asn_field = fields[0].strip_prefix("AS").unwrap_or(fields[0]);
        let asn: u32 = match asn_field.parse() {
            Ok(a) => a,
            Err(e) => return err(lineno, format!("bad ASN `{}`: {e}", fields[0])),
        };
        if fields[1].contains(':') {
            continue; // IPv6 ROA: out of scope
        }
        let prefix: Ipv4Prefix = match fields[1].parse() {
            Ok(p) => p,
            Err(e) => return err(lineno, format!("bad prefix `{}`: {e}", fields[1])),
        };
        let max_len: u8 = match fields[2].parse() {
            Ok(m) => m,
            Err(e) => return err(lineno, format!("bad max length `{}`: {e}", fields[2])),
        };
        if max_len < prefix.len() || max_len > 32 {
            return err(lineno, format!("max length {max_len} outside [{}..32]", prefix.len()));
        }
        out.push(Roa::new(prefix, max_len, asn));
    }
    Ok(out)
}

/// Render ROAs back to validator CSV (with header).
pub fn to_roa_csv(roas: &[Roa]) -> String {
    let mut out = String::from("ASN,IP Prefix,Max Length,Trust Anchor\n");
    for r in roas {
        out.push_str(&format!("AS{},{},{},xbgp\n", r.asn, r.prefix, r.max_len));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RoaHashTable, RoaTable, RovState};

    #[test]
    fn parses_validator_csv_with_header_and_comments() {
        let text = "\
ASN,IP Prefix,Max Length,Trust Anchor
# a comment
AS13335,1.0.0.0/24,24,apnic
65001,10.0.0.0/8,16
AS65002,2001:db8::/32,48,ripe

AS0,203.0.113.0/24,24,test
";
        let roas = parse_roa_csv(text).unwrap();
        assert_eq!(roas.len(), 3, "IPv6 row skipped, blank/comment ignored");
        assert_eq!(roas[0].asn, 13335);
        assert_eq!(roas[0].prefix, "1.0.0.0/24".parse().unwrap());
        assert_eq!(roas[1].max_len, 16);
        assert_eq!(roas[2].asn, 0, "AS0 ROAs are legal (RFC 6483)");
    }

    #[test]
    fn reports_line_numbers_on_errors() {
        let e = parse_roa_csv("AS1,10.0.0.0/8\n").unwrap_err();
        assert_eq!(e.line, 1);
        let e = parse_roa_csv("AS1,10.0.0.0/8,16,ta\nASx,10.0.0.0/8,16\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("ASx"));
        let e = parse_roa_csv("AS1,10.0.0.0/16,8,ta\n").unwrap_err();
        assert!(e.to_string().contains("max length"));
    }

    #[test]
    fn csv_round_trip() {
        let roas = vec![
            Roa::new("10.0.0.0/8".parse().unwrap(), 24, 65001),
            Roa::new("192.0.2.0/24".parse().unwrap(), 24, 0),
        ];
        let text = to_roa_csv(&roas);
        assert_eq!(parse_roa_csv(&text).unwrap(), roas);
    }

    #[test]
    fn loaded_file_drives_validation() {
        let text = "AS65001,10.0.0.0/8,16,test\n";
        let mut table = RoaHashTable::new();
        for r in parse_roa_csv(text).unwrap() {
            table.insert(r);
        }
        assert_eq!(table.validate("10.1.0.0/16".parse().unwrap(), 65001), RovState::Valid);
        assert_eq!(table.validate("10.1.0.0/16".parse().unwrap(), 65002), RovState::Invalid);
    }
}
