//! # rpki — route-origin-validation substrate
//!
//! §3.4 of the paper validates BGP prefix origins against Route Origin
//! Authorizations (ROAs). Its surprise result — the xBGP extension being
//! ~10% *faster* than FRRouting's native code — comes down to data
//! structures: FRRouting walks a dedicated **trie** of validated ROAs per
//! lookup, while BIRD (and the extension) use a **hash table**.
//!
//! This crate provides both structures behind one trait so the daemons can
//! reproduce that asymmetry faithfully:
//!
//! * [`RoaTrie`] — a bit-level binary trie with one heap node per prefix
//!   bit (FRRouting style; pointer-chasing, cache-unfriendly);
//! * [`RoaHashTable`] — ROAs bucketed by `(prefix, length)` with a bitmask
//!   of lengths actually present, so a lookup probes only a handful of
//!   hash buckets (BIRD style).
//!
//! Both implement RFC 6811 semantics and are property-tested to agree.

pub mod file;

pub use file::{parse_roa_csv, to_roa_csv, RoaFileError};

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use xbgp_wire::Ipv4Prefix;

/// BIRD-style integer hasher: a single multiplicative mix, as cheap as the
/// original's `u32_hash`. (The default SipHash would dominate lookup cost
/// and hide the structural comparison the paper makes.)
#[derive(Default)]
pub struct FibHasher(u64);

impl Hasher for FibHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }
    fn write_u64(&mut self, v: u64) {
        // Rotate-xor-multiply (fxhash): one multiply, and the entropy
        // reaches the low bits the bucket index is taken from.
        self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        self.0 ^= self.0 >> 29;
    }
}

type FibBuildHasher = BuildHasherDefault<FibHasher>;

/// RFC 6811 validation states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum RovState {
    /// No ROA covers the announced prefix.
    NotFound = 0,
    /// A covering ROA matches the origin AS and the max-length bound.
    Valid = 1,
    /// Covering ROAs exist but none matches.
    Invalid = 2,
}

/// One Route Origin Authorization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Roa {
    pub prefix: Ipv4Prefix,
    /// Longest announced prefix length this ROA authorizes.
    pub max_len: u8,
    /// Authorized origin AS.
    pub asn: u32,
}

impl Roa {
    pub fn new(prefix: Ipv4Prefix, max_len: u8, asn: u32) -> Roa {
        assert!(max_len >= prefix.len() && max_len <= 32);
        Roa { prefix, max_len, asn }
    }
}

/// A validated-ROA store supporting RFC 6811 origin validation.
pub trait RoaTable {
    /// Insert one ROA.
    fn insert(&mut self, roa: Roa);

    /// Validate `(prefix, origin_asn)` per RFC 6811.
    fn validate(&self, prefix: Ipv4Prefix, origin_asn: u32) -> RovState;

    /// Number of stored ROAs.
    fn len(&self) -> usize;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Shared RFC 6811 verdict computation over the covering ROAs.
fn verdict(covering: impl Iterator<Item = (u8, u8, u32)>, plen: u8, origin: u32) -> RovState {
    // Items are (roa_prefix_len, max_len, asn); caller guarantees each ROA
    // prefix covers the announced prefix.
    let mut any = false;
    for (_roa_len, max_len, asn) in covering {
        any = true;
        if asn == origin && plen <= max_len && origin != 0 {
            return RovState::Valid;
        }
    }
    if any {
        RovState::Invalid
    } else {
        RovState::NotFound
    }
}

// ---------------------------------------------------------------------
// Trie backend (FRRouting style)
// ---------------------------------------------------------------------

#[derive(Debug, Default)]
struct TrieNode {
    children: [Option<Box<TrieNode>>; 2],
    /// ROAs whose prefix ends exactly at this node: `(max_len, asn)`.
    roas: Vec<(u8, u32)>,
    /// The prefix this node represents. FRRouting's table trie stores a
    /// full `struct prefix` per `route_node` and compares it during the
    /// walk; keeping (and checking) it here reproduces both the work and
    /// the cache footprint of that design — the footprint is the point of
    /// §3.4's comparison.
    prefix: (u32, u8),
    /// FRRouting `route_node` bookkeeping the walk touches: parent link,
    /// lock count, table back-pointer, rn->info slot. Modelled as the
    /// fields the original dereferences per level. `info` is ballast:
    /// never read, it only reproduces the node's cache footprint.
    lock: u64,
    table_id: u64,
    #[allow(dead_code)]
    info: [u64; 16],
}

/// Bit-level binary trie of ROAs; every validation walks from the root
/// down the announced prefix's bits, collecting covering ROAs.
#[derive(Debug, Default)]
pub struct RoaTrie {
    root: TrieNode,
    count: usize,
}

impl RoaTrie {
    pub fn new() -> RoaTrie {
        RoaTrie::default()
    }
}

fn bit(addr: u32, i: u8) -> usize {
    ((addr >> (31 - i)) & 1) as usize
}

impl RoaTable for RoaTrie {
    fn insert(&mut self, roa: Roa) {
        let mut node = &mut self.root;
        for i in 0..roa.prefix.len() {
            let b = bit(roa.prefix.addr(), i);
            let masked = roa.prefix.addr() & Ipv4Prefix::mask(i + 1);
            node = node.children[b].get_or_insert_with(Box::default);
            node.prefix = (masked, i + 1);
        }
        node.roas.push((roa.max_len, roa.asn));
        self.count += 1;
    }

    fn validate(&self, prefix: Ipv4Prefix, origin_asn: u32) -> RovState {
        let mut covering: Vec<(u8, u8, u32)> = Vec::new();
        let mut node = Some(&self.root);
        let mut depth: u8 = 0;
        while let Some(n) = node {
            // Per-level route_node work, as in FRR's `bgp_node_match`:
            // prefix comparison plus lock bookkeeping on the node.
            let (naddr, nlen) = n.prefix;
            if u32::from(depth) != 0
                && (nlen != depth || naddr != prefix.addr() & Ipv4Prefix::mask(depth))
            {
                break; // corrupt trie; unreachable by construction
            }
            let _locked = n.lock.wrapping_add(n.table_id); // route_lock_node
            std::hint::black_box(_locked);
            for &(max_len, asn) in &n.roas {
                covering.push((depth, max_len, asn));
            }
            if depth == prefix.len() {
                break;
            }
            node = n.children[bit(prefix.addr(), depth)].as_deref();
            depth += 1;
        }
        verdict(covering.into_iter(), prefix.len(), origin_asn)
    }

    fn len(&self) -> usize {
        self.count
    }
}

// ---------------------------------------------------------------------
// Hash backend (BIRD style)
// ---------------------------------------------------------------------

/// First ROA for a key, stored inline in the table (BIRD keeps its fib
/// nodes inline too — the indirection-free lookup is the whole point).
#[derive(Debug, Clone, Copy)]
struct InlineRoa {
    max_len: u8,
    asn: u32,
    /// More ROAs for this exact prefix live in the overflow map.
    has_more: bool,
}

/// Hash-table ROA store: entries keyed by `(masked address, length)` and
/// stored inline (no per-bucket indirection); a 33-bit mask records which
/// prefix lengths are populated so a validation probes only those.
/// Multiple ROAs for the same exact prefix are rare and spill into an
/// overflow map.
#[derive(Debug, Default)]
pub struct RoaHashTable {
    buckets: HashMap<u64, InlineRoa, FibBuildHasher>,
    overflow: HashMap<u64, Vec<(u8, u32)>, FibBuildHasher>,
    /// Bit `l` set ⇔ some ROA has prefix length `l`.
    lengths: u64,
    count: usize,
}

impl RoaHashTable {
    pub fn new() -> RoaHashTable {
        RoaHashTable::default()
    }

    fn key(addr: u32, len: u8) -> u64 {
        (u64::from(addr) << 6) | u64::from(len)
    }
}

impl RoaTable for RoaHashTable {
    fn insert(&mut self, roa: Roa) {
        let key = Self::key(roa.prefix.addr(), roa.prefix.len());
        match self.buckets.get_mut(&key) {
            None => {
                self.buckets
                    .insert(key, InlineRoa { max_len: roa.max_len, asn: roa.asn, has_more: false });
            }
            Some(first) => {
                first.has_more = true;
                self.overflow.entry(key).or_default().push((roa.max_len, roa.asn));
            }
        }
        self.lengths |= 1 << roa.prefix.len();
        self.count += 1;
    }

    fn validate(&self, prefix: Ipv4Prefix, origin_asn: u32) -> RovState {
        let plen = prefix.len();
        let mut any = false;
        let mut lengths = self.lengths & (((1u64 << plen) << 1) - 1);
        while lengths != 0 {
            let l = lengths.trailing_zeros() as u8;
            lengths &= lengths - 1;
            let masked = prefix.addr() & Ipv4Prefix::mask(l);
            let key = Self::key(masked, l);
            let Some(first) = self.buckets.get(&key) else {
                continue;
            };
            any = true;
            if first.asn == origin_asn && plen <= first.max_len && origin_asn != 0 {
                return RovState::Valid;
            }
            if first.has_more {
                if let Some(rest) = self.overflow.get(&key) {
                    for &(max_len, asn) in rest {
                        if asn == origin_asn && plen <= max_len && origin_asn != 0 {
                            return RovState::Valid;
                        }
                    }
                }
            }
        }
        if any {
            RovState::Invalid
        } else {
            RovState::NotFound
        }
    }

    fn len(&self) -> usize {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    fn both() -> (RoaTrie, RoaHashTable) {
        (RoaTrie::new(), RoaHashTable::new())
    }

    fn check_each(tables: (&dyn RoaTable, &dyn RoaTable), prefix: &str, asn: u32, want: RovState) {
        assert_eq!(tables.0.validate(p(prefix), asn), want, "trie: {prefix} AS{asn}");
        assert_eq!(tables.1.validate(p(prefix), asn), want, "hash: {prefix} AS{asn}");
    }

    #[test]
    fn rfc6811_basics() {
        let (mut t, mut h) = both();
        for table in [&mut t as &mut dyn RoaTable, &mut h as &mut dyn RoaTable] {
            table.insert(Roa::new(p("10.0.0.0/8"), 16, 65001));
        }
        // Exact and within max-length: valid for the right origin.
        check_each((&t, &h), "10.0.0.0/8", 65001, RovState::Valid);
        check_each((&t, &h), "10.1.0.0/16", 65001, RovState::Valid);
        // Too specific: invalid even for the right origin.
        check_each((&t, &h), "10.1.1.0/24", 65001, RovState::Invalid);
        // Wrong origin: invalid.
        check_each((&t, &h), "10.1.0.0/16", 65002, RovState::Invalid);
        // Not covered at all: not found.
        check_each((&t, &h), "11.0.0.0/8", 65001, RovState::NotFound);
    }

    #[test]
    fn multiple_roas_any_match_wins() {
        let (mut t, mut h) = both();
        for table in [&mut t as &mut dyn RoaTable, &mut h as &mut dyn RoaTable] {
            table.insert(Roa::new(p("192.0.2.0/24"), 24, 65001));
            table.insert(Roa::new(p("192.0.2.0/24"), 24, 65002));
            table.insert(Roa::new(p("192.0.0.0/16"), 24, 65003));
        }
        check_each((&t, &h), "192.0.2.0/24", 65001, RovState::Valid);
        check_each((&t, &h), "192.0.2.0/24", 65002, RovState::Valid);
        check_each((&t, &h), "192.0.2.0/24", 65003, RovState::Valid);
        check_each((&t, &h), "192.0.2.0/24", 65004, RovState::Invalid);
        // The /16 ROA alone covers other /24s below it.
        check_each((&t, &h), "192.0.9.0/24", 65003, RovState::Valid);
        check_each((&t, &h), "192.0.9.0/24", 65001, RovState::Invalid);
    }

    #[test]
    fn as0_roa_always_invalidates() {
        // RFC 6483 §4: AS 0 ROA means "nobody may originate".
        let (mut t, mut h) = both();
        for table in [&mut t as &mut dyn RoaTable, &mut h as &mut dyn RoaTable] {
            table.insert(Roa::new(p("203.0.113.0/24"), 32, 0));
        }
        check_each((&t, &h), "203.0.113.0/24", 0, RovState::Invalid);
        check_each((&t, &h), "203.0.113.0/24", 65001, RovState::Invalid);
    }

    #[test]
    fn default_route_roa_covers_everything() {
        let (mut t, mut h) = both();
        for table in [&mut t as &mut dyn RoaTable, &mut h as &mut dyn RoaTable] {
            table.insert(Roa::new(p("0.0.0.0/0"), 32, 7));
        }
        check_each((&t, &h), "1.2.3.4/32", 7, RovState::Valid);
        check_each((&t, &h), "255.0.0.0/8", 8, RovState::Invalid);
    }

    #[test]
    fn len_tracks_insertions() {
        let (mut t, mut h) = both();
        assert!(t.is_empty() && h.is_empty());
        t.insert(Roa::new(p("10.0.0.0/8"), 8, 1));
        h.insert(Roa::new(p("10.0.0.0/8"), 8, 1));
        h.insert(Roa::new(p("10.0.0.0/8"), 8, 2));
        assert_eq!(t.len(), 1);
        assert_eq!(h.len(), 2);
    }

    #[test]
    #[should_panic]
    fn roa_max_len_below_prefix_len_rejected() {
        let _ = Roa::new(p("10.0.0.0/16"), 8, 1);
    }

    fn arb_roa() -> impl Strategy<Value = Roa> {
        (any::<u32>(), 0u8..=32, 1u32..5).prop_flat_map(|(addr, len, asn)| {
            (len..=32).prop_map(move |max_len| Roa::new(Ipv4Prefix::new(addr, len), max_len, asn))
        })
    }

    proptest! {
        /// The two backends are observationally equivalent.
        #[test]
        fn prop_trie_and_hash_agree(
            roas in proptest::collection::vec(arb_roa(), 0..40),
            queries in proptest::collection::vec((any::<u32>(), 0u8..=32, 0u32..6), 0..40),
        ) {
            let mut trie = RoaTrie::new();
            let mut hash = RoaHashTable::new();
            for r in &roas {
                trie.insert(*r);
                hash.insert(*r);
            }
            for (addr, len, asn) in queries {
                let q = Ipv4Prefix::new(addr, len);
                prop_assert_eq!(trie.validate(q, asn), hash.validate(q, asn), "query {}", q);
            }
        }

        /// A prefix always validates as Valid against its own exact ROA.
        #[test]
        fn prop_exact_roa_is_valid(addr: u32, len in 0u8..=32, asn in 1u32..1_000_000) {
            let prefix = Ipv4Prefix::new(addr, len);
            let mut trie = RoaTrie::new();
            trie.insert(Roa::new(prefix, 32, asn));
            prop_assert_eq!(trie.validate(prefix, asn), RovState::Valid);
            prop_assert_eq!(trie.validate(prefix, asn + 1), RovState::Invalid);
        }
    }
}
