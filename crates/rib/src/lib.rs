//! # xbgp-rib — the shared incremental RIB engine
//!
//! Both daemons key their RIBs on the same store so that a fix or an
//! optimisation lands once:
//!
//! * [`PrefixMap`] — a path-compressed binary trie keyed by
//!   [`Ipv4Prefix`]. Iteration is pre-order over the trie, which is
//!   *exactly* `(addr, len)`-lexicographic order — the same order a
//!   collect-and-sort over `Ipv4Prefix`'s derived `Ord` produces. Dump
//!   paths therefore never sort; determinism comes from the structure.
//! * [`DirtySet`] — an ordered set of prefixes touched by an UPDATE
//!   batch, drained in prefix order for batched *delta* best-path
//!   recomputation: only prefixes actually touched get re-decided.
//! * [`RibCounters`] / [`push_rib_gauges`] — the churn observability
//!   bundle (`xbgp_rib_*` series) shared by FIR and WREN so their
//!   `--metrics-out` snapshots line up row for row.

pub mod dirty;
pub mod map;
pub mod metrics;

pub use dirty::DirtySet;
pub use map::PrefixMap;
pub use metrics::{push_rib_gauges, RibCounters};
