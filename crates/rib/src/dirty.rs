//! The dirty-prefix set driving batched delta recomputation.
//!
//! An UPDATE batch marks every prefix it touches; at the end of the
//! batch the daemon drains the set **in prefix order** and re-decides
//! only those. Ordering matters twice: the withdrawal storm a drain
//! produces must be deterministic (not hash-ordered), and the oracle
//! comparison replays decisions in the same order the incremental path
//! used.

use crate::map::PrefixMap;
use xbgp_wire::Ipv4Prefix;

/// An ordered set of prefixes pending re-decision.
#[derive(Debug, Default)]
pub struct DirtySet {
    set: PrefixMap<()>,
}

impl DirtySet {
    pub fn new() -> DirtySet {
        DirtySet::default()
    }

    /// Mark a prefix dirty. Returns true if it was not already marked.
    pub fn mark(&mut self, prefix: Ipv4Prefix) -> bool {
        self.set.insert(prefix, ()).is_none()
    }

    /// Unmark a prefix (it was decided inline, e.g. a withdraw followed
    /// by a re-announce of the same prefix within one batch). Returns
    /// true if it had been marked.
    pub fn unmark(&mut self, prefix: &Ipv4Prefix) -> bool {
        self.set.remove(prefix).is_some()
    }

    pub fn contains(&self, prefix: &Ipv4Prefix) -> bool {
        self.set.contains_key(prefix)
    }

    pub fn len(&self) -> usize {
        self.set.len()
    }

    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// Take every pending prefix, in `(addr, len)` order.
    pub fn drain_ordered(&mut self) -> Vec<Ipv4Prefix> {
        let out: Vec<Ipv4Prefix> = self.set.keys().collect();
        self.set.clear();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn mark_unmark_drain_in_order() {
        let mut d = DirtySet::new();
        assert!(d.mark(p("192.0.2.0/24")));
        assert!(d.mark(p("10.0.0.0/8")));
        assert!(!d.mark(p("10.0.0.0/8")), "double mark is idempotent");
        assert!(d.mark(p("10.0.0.0/16")));
        assert_eq!(d.len(), 3);
        assert!(d.unmark(&p("10.0.0.0/16")));
        assert!(!d.unmark(&p("10.0.0.0/16")));
        assert!(d.contains(&p("10.0.0.0/8")));
        assert_eq!(d.drain_ordered(), vec![p("10.0.0.0/8"), p("192.0.2.0/24")]);
        assert!(d.is_empty());
    }
}
