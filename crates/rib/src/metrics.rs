//! The shared `xbgp_rib_*` observability bundle.
//!
//! Both daemons account RIB churn through the same counter block and
//! gauge pusher so a merged `--metrics-out` snapshot compares FIR and
//! WREN row for row:
//!
//! * gauges — `xbgp_rib_adj_in` (candidate routes across all peers),
//!   `xbgp_rib_loc` (nets with a best route), `xbgp_rib_dirty_pending`
//!   (prefixes awaiting delta re-decision at snapshot time; 0 at any
//!   quiescent point);
//! * counters — `xbgp_rib_updates_applied_total`,
//!   `xbgp_rib_withdrawals_total`, `xbgp_rib_best_changes_total`;
//! * histogram — `xbgp_rib_delta_batch_size`, one observation per
//!   drained dirty batch (how many prefixes each UPDATE batch actually
//!   re-decided — the quantity the incremental engine keeps small).

use xbgp_obs::{Histogram, Snapshot};

/// Per-daemon RIB churn accounting. Plain integers: the daemons are
/// single-threaded event handlers, so the hot path pays an increment,
/// not an atomic RMW (the histogram's relaxed atomics are the
/// exception, reused from `xbgp-obs` for its bucket layout).
#[derive(Debug, Default)]
pub struct RibCounters {
    /// Routes applied to the candidate store (announcements accepted).
    pub updates_applied: u64,
    /// Routes removed from the candidate store (explicit withdraws,
    /// replaced announcements are not counted).
    pub withdrawals: u64,
    /// Best-path changes committed to the Loc-RIB view.
    pub best_changes: u64,
    /// Size of each drained delta batch (prefixes re-decided per batch).
    pub delta_batch_size: Histogram,
}

impl RibCounters {
    pub fn new() -> RibCounters {
        RibCounters::default()
    }

    /// Append the counter block to a snapshot (gauges are pushed
    /// separately via [`push_rib_gauges`] — they read live sizes the
    /// counters don't know).
    pub fn push(&self, snap: &mut Snapshot) {
        snap.push_counter("xbgp_rib_updates_applied_total", &[], self.updates_applied);
        snap.push_counter("xbgp_rib_withdrawals_total", &[], self.withdrawals);
        snap.push_counter("xbgp_rib_best_changes_total", &[], self.best_changes);
        snap.push_histogram("xbgp_rib_delta_batch_size", &[], self.delta_batch_size.snapshot());
    }
}

/// Append the RIB occupancy gauges to a snapshot.
pub fn push_rib_gauges(snap: &mut Snapshot, adj_in: usize, loc: usize, dirty_pending: usize) {
    snap.push_gauge("xbgp_rib_adj_in", &[], adj_in as i64);
    snap.push_gauge("xbgp_rib_loc", &[], loc as i64);
    snap.push_gauge("xbgp_rib_dirty_pending", &[], dirty_pending as i64);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_land_in_snapshots() {
        let mut c = RibCounters::new();
        c.updates_applied += 10;
        c.withdrawals += 3;
        c.best_changes += 7;
        c.delta_batch_size.observe(3);
        c.delta_batch_size.observe(5);

        let mut snap = Snapshot::new();
        c.push(&mut snap);
        push_rib_gauges(&mut snap, 42, 40, 0);

        assert_eq!(snap.counter_value("xbgp_rib_updates_applied_total", &[]), Some(10));
        assert_eq!(snap.counter_value("xbgp_rib_withdrawals_total", &[]), Some(3));
        assert_eq!(snap.counter_value("xbgp_rib_best_changes_total", &[]), Some(7));
        assert_eq!(snap.histogram_value("xbgp_rib_delta_batch_size", &[]).unwrap().count, 2);
        assert_eq!(snap.gauge_value("xbgp_rib_adj_in", &[]), Some(42));
        assert_eq!(snap.gauge_value("xbgp_rib_loc", &[]), Some(40));
        assert_eq!(snap.gauge_value("xbgp_rib_dirty_pending", &[]), Some(0));

        // Shard merge must combine, not duplicate, these keys.
        let mut other = Snapshot::new();
        c.push(&mut other);
        push_rib_gauges(&mut other, 1, 1, 1);
        snap.merge(other).unwrap();
        assert_eq!(snap.counter_value("xbgp_rib_updates_applied_total", &[]), Some(20));
        assert_eq!(snap.gauge_value("xbgp_rib_adj_in", &[]), Some(43));
        assert_eq!(snap.histogram_value("xbgp_rib_delta_batch_size", &[]).unwrap().count, 4);
    }
}
