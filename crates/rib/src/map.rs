//! A path-compressed binary trie keyed by [`Ipv4Prefix`].
//!
//! The classic radix-trie layout used by routing-table code (BIRD's
//! `fib`, FRR's `route_node`, the `prefix_trie` crate): every node
//! carries a full prefix, an optional value, and at most two children;
//! internal branch nodes without a value are created only where two
//! stored prefixes diverge, so the depth is bounded by the number of
//! stored prefixes on the path, not by 32.
//!
//! The property everything downstream leans on: **pre-order traversal
//! (node, then 0-subtree, then 1-subtree) yields keys in `(addr, len)`
//! lexicographic order** — identical to sorting with `Ipv4Prefix`'s
//! derived `Ord`. A node's own prefix has its host bits zero, so it
//! compares before every descendant; the 0-subtree's addresses all have
//! bit `len` clear while the 1-subtree's have it set, so the 0-subtree
//! compares before the 1-subtree in full. Dump paths iterate instead of
//! collect-and-sort, and the withdrawal order after a session flush is
//! deterministic by construction.

use xbgp_wire::Ipv4Prefix;

/// Sentinel child index: no child.
const NONE: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Node<V> {
    key: Ipv4Prefix,
    value: Option<V>,
    child: [u32; 2],
}

impl<V> Node<V> {
    fn leaf(key: Ipv4Prefix, value: Option<V>) -> Node<V> {
        Node { key, value, child: [NONE, NONE] }
    }

    fn child_count(&self) -> usize {
        usize::from(self.child[0] != NONE) + usize::from(self.child[1] != NONE)
    }
}

/// Bit `pos` (0 = most significant) of `addr`.
#[inline]
fn bit(addr: u32, pos: u8) -> usize {
    debug_assert!(pos < 32);
    ((addr >> (31 - pos)) & 1) as usize
}

/// An ordered map from [`Ipv4Prefix`] to `V` on a path-compressed trie.
///
/// Nodes live in an arena `Vec` with a free list; indices are stable
/// across unrelated inserts/removes. The root is the implicit
/// `0.0.0.0/0` node at index 0 (it holds a value only if the default
/// route itself is inserted).
#[derive(Debug, Clone)]
pub struct PrefixMap<V> {
    nodes: Vec<Node<V>>,
    free: Vec<u32>,
    len: usize,
}

impl<V> Default for PrefixMap<V> {
    fn default() -> PrefixMap<V> {
        PrefixMap {
            nodes: vec![Node::leaf(Ipv4Prefix::DEFAULT, None)],
            free: Vec::new(),
            len: 0,
        }
    }
}

impl<V> PrefixMap<V> {
    pub fn new() -> PrefixMap<V> {
        PrefixMap::default()
    }

    /// Number of stored values.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drop every entry, keeping the allocation.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.nodes.push(Node::leaf(Ipv4Prefix::DEFAULT, None));
        self.free.clear();
        self.len = 0;
    }

    fn alloc(&mut self, node: Node<V>) -> u32 {
        if let Some(i) = self.free.pop() {
            self.nodes[i as usize] = node;
            i
        } else {
            self.nodes.push(node);
            (self.nodes.len() - 1) as u32
        }
    }

    /// Insert or replace; returns the previous value if any.
    pub fn insert(&mut self, key: Ipv4Prefix, value: V) -> Option<V> {
        let mut cur = 0u32;
        loop {
            let node_key = self.nodes[cur as usize].key;
            if node_key == key {
                let old = self.nodes[cur as usize].value.replace(value);
                if old.is_none() {
                    self.len += 1;
                }
                return old;
            }
            debug_assert!(node_key.covers(&key));
            let b = bit(key.addr(), node_key.len());
            let c = self.nodes[cur as usize].child[b];
            if c == NONE {
                let leaf = self.alloc(Node::leaf(key, Some(value)));
                self.nodes[cur as usize].child[b] = leaf;
                self.len += 1;
                return None;
            }
            let child_key = self.nodes[c as usize].key;
            if child_key.covers(&key) {
                cur = c;
                continue;
            }
            if key.covers(&child_key) {
                // `key` sits between `cur` and its child: splice it in.
                let n = self.alloc(Node::leaf(key, Some(value)));
                self.nodes[n as usize].child[bit(child_key.addr(), key.len())] = c;
                self.nodes[cur as usize].child[b] = n;
                self.len += 1;
                return None;
            }
            // Diverging prefixes: branch at their longest common prefix.
            let common = ((key.addr() ^ child_key.addr()).leading_zeros() as u8)
                .min(key.len())
                .min(child_key.len());
            debug_assert!(common > node_key.len());
            let branch = self.alloc(Node::leaf(Ipv4Prefix::new(key.addr(), common), None));
            let leaf = self.alloc(Node::leaf(key, Some(value)));
            self.nodes[branch as usize].child[bit(key.addr(), common)] = leaf;
            self.nodes[branch as usize].child[bit(child_key.addr(), common)] = c;
            self.nodes[cur as usize].child[b] = branch;
            self.len += 1;
            return None;
        }
    }

    /// Index of the node holding exactly `key`, if present.
    fn find(&self, key: &Ipv4Prefix) -> Option<u32> {
        let mut cur = 0u32;
        loop {
            let node_key = self.nodes[cur as usize].key;
            if node_key == *key {
                return Some(cur);
            }
            if !node_key.covers(key) {
                return None;
            }
            let c = self.nodes[cur as usize].child[bit(key.addr(), node_key.len())];
            if c == NONE {
                return None;
            }
            cur = c;
        }
    }

    pub fn get(&self, key: &Ipv4Prefix) -> Option<&V> {
        self.find(key).and_then(|i| self.nodes[i as usize].value.as_ref())
    }

    pub fn get_mut(&mut self, key: &Ipv4Prefix) -> Option<&mut V> {
        self.find(key).and_then(|i| self.nodes[i as usize].value.as_mut())
    }

    pub fn contains_key(&self, key: &Ipv4Prefix) -> bool {
        self.get(key).is_some()
    }

    /// Get the value for `key`, inserting `default()` first if absent.
    pub fn get_or_insert_with(&mut self, key: Ipv4Prefix, default: impl FnOnce() -> V) -> &mut V {
        if self.find(&key).and_then(|i| self.nodes[i as usize].value.as_ref()).is_none() {
            self.insert(key, default());
        }
        let i = self.find(&key).expect("just inserted");
        self.nodes[i as usize].value.as_mut().expect("just inserted")
    }

    /// Remove `key`, returning its value. Structural nodes left without a
    /// purpose (no value, fewer than two children) are spliced out so the
    /// trie never accumulates dead branches under churn.
    pub fn remove(&mut self, key: &Ipv4Prefix) -> Option<V> {
        // Descend, remembering the path for post-removal cleanup.
        let mut path: Vec<u32> = Vec::new();
        let mut cur = 0u32;
        loop {
            let node_key = self.nodes[cur as usize].key;
            if node_key == *key {
                break;
            }
            if !node_key.covers(key) {
                return None;
            }
            let c = self.nodes[cur as usize].child[bit(key.addr(), node_key.len())];
            if c == NONE {
                return None;
            }
            path.push(cur);
            cur = c;
        }
        let old = self.nodes[cur as usize].value.take()?;
        self.len -= 1;
        // Cleanup pass: at most two structural fixes (the removed node,
        // then a parent branch left with a single child).
        let mut target = cur;
        while target != 0 {
            let node = &self.nodes[target as usize];
            if node.value.is_some() || node.child_count() == 2 {
                break;
            }
            let parent = path.pop().expect("non-root node has a parent");
            let slot = bit(node.key.addr(), self.nodes[parent as usize].key.len());
            debug_assert_eq!(self.nodes[parent as usize].child[slot], target);
            let replacement = match self.nodes[target as usize].child_count() {
                0 => NONE,
                _ => {
                    let c = &self.nodes[target as usize].child;
                    if c[0] != NONE {
                        c[0]
                    } else {
                        c[1]
                    }
                }
            };
            self.nodes[parent as usize].child[slot] = replacement;
            self.free.push(target);
            if replacement != NONE {
                // Splicing kept the parent's child count: no cascade.
                break;
            }
            target = parent;
        }
        Some(old)
    }

    /// Iterate `(prefix, value)` in `(addr, len)` lexicographic order.
    pub fn iter(&self) -> Iter<'_, V> {
        Iter { map: self, stack: vec![0] }
    }

    /// Iterate prefixes in `(addr, len)` lexicographic order.
    pub fn keys(&self) -> impl Iterator<Item = Ipv4Prefix> + '_ {
        self.iter().map(|(k, _)| k)
    }

    /// Iterate values in key order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.iter().map(|(_, v)| v)
    }

    /// In-order traversal with mutable access to each value. An iterator
    /// version would need unsafe self-borrowing; a visitor is enough for
    /// the daemons (full-table resorts and feed paths).
    pub fn for_each_mut(&mut self, mut f: impl FnMut(Ipv4Prefix, &mut V)) {
        let mut stack = vec![0u32];
        while let Some(i) = stack.pop() {
            let [c0, c1] = self.nodes[i as usize].child;
            if c1 != NONE {
                stack.push(c1);
            }
            if c0 != NONE {
                stack.push(c0);
            }
            let key = self.nodes[i as usize].key;
            if let Some(v) = self.nodes[i as usize].value.as_mut() {
                f(key, v);
            }
        }
    }
}

/// Ordered iterator over a [`PrefixMap`] (pre-order trie walk).
pub struct Iter<'a, V> {
    map: &'a PrefixMap<V>,
    stack: Vec<u32>,
}

impl<'a, V> Iterator for Iter<'a, V> {
    type Item = (Ipv4Prefix, &'a V);

    fn next(&mut self) -> Option<(Ipv4Prefix, &'a V)> {
        while let Some(i) = self.stack.pop() {
            let node = &self.map.nodes[i as usize];
            // Push the 1-subtree first so the 0-subtree pops first.
            if node.child[1] != NONE {
                self.stack.push(node.child[1]);
            }
            if node.child[0] != NONE {
                self.stack.push(node.child[0]);
            }
            if let Some(v) = node.value.as_ref() {
                return Some((node.key, v));
            }
        }
        None
    }
}

impl<V> FromIterator<(Ipv4Prefix, V)> for PrefixMap<V> {
    fn from_iter<T: IntoIterator<Item = (Ipv4Prefix, V)>>(iter: T) -> PrefixMap<V> {
        let mut map = PrefixMap::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn insert_get_replace_remove() {
        let mut m = PrefixMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(p("10.0.0.0/8"), 1), None);
        assert_eq!(m.insert(p("10.0.0.0/8"), 2), Some(1));
        assert_eq!(m.get(&p("10.0.0.0/8")), Some(&2));
        assert_eq!(m.len(), 1);
        assert_eq!(m.remove(&p("10.0.0.0/8")), Some(2));
        assert_eq!(m.remove(&p("10.0.0.0/8")), None);
        assert!(m.is_empty());
    }

    #[test]
    fn nested_and_diverging_prefixes_coexist() {
        let mut m = PrefixMap::new();
        // Parent, child, sibling, the default route, and a host route.
        for (i, k) in ["10.0.0.0/8", "10.1.0.0/16", "10.128.0.0/9", "0.0.0.0/0", "10.1.2.3/32"]
            .iter()
            .enumerate()
        {
            m.insert(p(k), i);
        }
        assert_eq!(m.len(), 5);
        assert_eq!(m.get(&p("10.0.0.0/8")), Some(&0));
        assert_eq!(m.get(&p("10.1.0.0/16")), Some(&1));
        assert_eq!(m.get(&p("10.128.0.0/9")), Some(&2));
        assert_eq!(m.get(&p("0.0.0.0/0")), Some(&3));
        assert_eq!(m.get(&p("10.1.2.3/32")), Some(&4));
        // A covering but never-inserted prefix is absent.
        assert_eq!(m.get(&p("10.1.0.0/12")), None);
        assert_eq!(m.get(&p("10.1.2.0/24")), None);
    }

    #[test]
    fn iteration_is_prefix_ordered_without_sorting() {
        let keys = [
            "203.0.113.0/24",
            "10.0.0.0/8",
            "10.1.0.0/16",
            "10.0.0.0/16",
            "192.168.0.0/16",
            "10.128.0.0/9",
            "0.0.0.0/0",
            "10.1.0.0/24",
            "172.16.0.0/12",
            "10.0.255.0/24",
        ];
        let mut m = PrefixMap::new();
        for (i, k) in keys.iter().enumerate() {
            m.insert(p(k), i);
        }
        let got: Vec<Ipv4Prefix> = m.keys().collect();
        let mut want: Vec<Ipv4Prefix> = keys.iter().map(|k| p(k)).collect();
        want.sort();
        assert_eq!(got, want, "pre-order trie walk must equal the sorted key order");
    }

    #[test]
    fn remove_splices_out_dead_branches() {
        let mut m = PrefixMap::new();
        m.insert(p("10.0.0.0/16"), 1);
        m.insert(p("10.1.0.0/16"), 2);
        // The two diverge under an implicit 10.0.0.0/15 branch node.
        assert_eq!(m.remove(&p("10.0.0.0/16")), Some(1));
        assert_eq!(m.get(&p("10.1.0.0/16")), Some(&2));
        assert_eq!(m.remove(&p("10.1.0.0/16")), Some(2));
        assert!(m.is_empty());
        // Arena fully recycled: only the root survives.
        assert_eq!(m.nodes.len() - m.free.len(), 1);
    }

    #[test]
    fn get_or_insert_with_reuses_existing() {
        let mut m: PrefixMap<Vec<u32>> = PrefixMap::new();
        m.get_or_insert_with(p("10.0.0.0/8"), Vec::new).push(1);
        m.get_or_insert_with(p("10.0.0.0/8"), Vec::new).push(2);
        assert_eq!(m.get(&p("10.0.0.0/8")), Some(&vec![1, 2]));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn clear_resets() {
        let mut m = PrefixMap::new();
        m.insert(p("10.0.0.0/8"), 1);
        m.insert(p("11.0.0.0/8"), 2);
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.iter().count(), 0);
        m.insert(p("12.0.0.0/8"), 3);
        assert_eq!(m.get(&p("12.0.0.0/8")), Some(&3));
    }

    #[test]
    fn for_each_mut_visits_in_order() {
        let mut m = PrefixMap::new();
        for k in ["10.2.0.0/16", "10.0.0.0/8", "10.1.0.0/16"] {
            m.insert(p(k), 0u32);
        }
        let mut order = Vec::new();
        m.for_each_mut(|k, v| {
            *v += 1;
            order.push(k);
        });
        assert_eq!(order, vec![p("10.0.0.0/8"), p("10.1.0.0/16"), p("10.2.0.0/16")]);
        assert!(m.values().all(|&v| v == 1));
    }

    proptest! {
        /// The trie must behave exactly like a `BTreeMap<Ipv4Prefix, u32>`
        /// over any interleaving of inserts and removes — same contents,
        /// same iteration order (BTreeMap iterates in derived-`Ord` order,
        /// which is what the pre-order walk claims to reproduce).
        #[test]
        fn prop_matches_btreemap_model(ops in proptest::collection::vec(
            (any::<bool>(), any::<u32>(), 0u8..=32, any::<u32>()), 1..120))
        {
            let mut m = PrefixMap::new();
            let mut model: BTreeMap<Ipv4Prefix, u32> = BTreeMap::new();
            for (is_insert, addr, len, val) in ops {
                // Bias the key space so collisions/nesting actually occur.
                let key = Ipv4Prefix::new(addr & 0x0f0f_ffff, len);
                if is_insert {
                    prop_assert_eq!(m.insert(key, val), model.insert(key, val));
                } else {
                    prop_assert_eq!(m.remove(&key), model.remove(&key));
                }
                prop_assert_eq!(m.len(), model.len());
            }
            let got: Vec<(Ipv4Prefix, u32)> = m.iter().map(|(k, v)| (k, *v)).collect();
            let want: Vec<(Ipv4Prefix, u32)> = model.iter().map(|(k, v)| (*k, *v)).collect();
            prop_assert_eq!(got, want);
            for (k, v) in &model {
                prop_assert_eq!(m.get(k), Some(v));
            }
        }
    }
}
