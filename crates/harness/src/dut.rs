//! The single fir-vs-wren construction site.
//!
//! Every front-end in the workspace — the Fig. 3 chain, the shard
//! workers, the scenario runner, the churn bench, and the `xbgp-serve`
//! socket runtime — describes the daemon it wants as an
//! [`xbgp_driver::DaemonSpec`] and calls [`build`]. The match below is
//! the only place that names a concrete daemon type; adding a third
//! implementation means adding one arm here and implementing
//! [`xbgp_driver::Daemon`] in its crate.

use bgp_fir::{FirConfig, FirDaemon};
use bgp_wren::{WrenConfig, WrenDaemon};

pub use xbgp_driver::{Daemon, DaemonCounters, DaemonSpec, Dut, DutNode, NeighborDecl};

/// Instantiate the requested implementation behind the driver seam.
pub fn build(dut: Dut, spec: DaemonSpec) -> DutNode {
    match dut {
        Dut::Fir => DutNode(Box::new(FirDaemon::new(FirConfig::from_spec(spec)))),
        Dut::Wren => DutNode(Box::new(WrenDaemon::new(WrenConfig::from_spec(spec)))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::LinkId;

    #[test]
    fn build_produces_the_requested_kind() {
        for dut in [Dut::Fir, Dut::Wren] {
            let spec = DaemonSpec::new(65000, 2).neighbor(LinkId(0), 1, 65001);
            let node = build(dut, spec);
            assert_eq!(node.0.kind(), dut);
            assert_eq!(node.0.loc_rib_len(), 0);
            assert!(!node.0.session_established(1));
            assert_eq!(node.0.counters(), DaemonCounters::default());
        }
    }
}
