//! Churn-scale update engine measurements.
//!
//! The Fig. 3/4 harnesses measure one-shot table transfer: blast 724k
//! routes, wait for the sink. This module measures the other regime a
//! production speaker lives in — **steady-state churn** against an
//! already-converged RIB. A [`routegen::churn`] stream (withdraw storms,
//! peer flaps, ROA sweeps, path-hunting cascades) replays against the DUT
//! in timed rounds, and two quantities come out:
//!
//! * **updates/sec** — routing updates absorbed per DUT CPU-second during
//!   the churn phase. Baselines (CPU time, update counters) are sampled at
//!   quiescence after the initial blast, strictly before the storm is
//!   armed, so the initial convergence cost never pollutes the figure.
//! * **convergence time** — virtual ns from the last churn round leaving
//!   the feeder to the DUT's last best-path change.
//!
//! Correctness is pinned by the full-recompute oracle: at the quiescent
//! point after the final (restore) round, the DUT's incremental Loc-RIB
//! must be byte-identical to a from-scratch decision pass over its
//! Adj-RIB-In ([`bgp_fir::FirDaemon::oracle_loc_rib_dump`] /
//! [`bgp_wren::WrenDaemon::oracle_loc_rib_dump`]). Sharded runs self-check
//! each replica — the invariant is per-RIB, not per-deployment.

use crate::dut::{build, DaemonSpec, DutNode};
use crate::feeder::Feeder;
use crate::fig3::{make_roas, Dut, UseCase};
use crate::shard::shard_of;
use crate::sink::Sink;
use netsim::{Sim, SimConfig};
use routegen::churn::{churn_rounds, total_updates, ChurnRound, ChurnSpec};
use routegen::{to_updates, Route, TableSpec};
use rpki::Roa;
use xbgp_core::{Engine, Manifest};
use xbgp_obs::{MetricValue, Snapshot};
use xbgp_progs::{origin_validation, route_reflect};
use xbgp_wire::{Ipv4Prefix, Message};

/// One churn experiment description.
#[derive(Debug, Clone, Copy)]
pub struct ChurnRunSpec {
    pub dut: Dut,
    pub use_case: UseCase,
    /// Run the feature as extension bytecode instead of native code.
    pub extension: bool,
    /// Initial table size.
    pub routes: usize,
    /// Workload seed (table, ROAs and churn stream all derive from it).
    pub seed: u64,
    /// Prefix-hash shards (see [`crate::shard`]). `0`/`1` = sequential.
    pub shards: usize,
    /// Bytecode execution engine on the DUT.
    pub engine: Engine,
    /// Run the full-recompute decision baseline instead of incremental
    /// delta recomputation (the ablation the speedup ratio is against).
    pub full_recompute: bool,
    /// Compare the final Loc-RIB against the from-scratch oracle and
    /// report the number of differing entries (0 = byte-identical).
    pub check_oracle: bool,
    /// The churn stream parameters (rounds, storm rates, flap period…).
    pub churn: ChurnSpec,
    /// Virtual-time gap between churn rounds.
    pub round_interval_ns: u64,
}

impl ChurnRunSpec {
    /// A churn run over `routes` prefixes with the default storm shape.
    pub fn new(dut: Dut, use_case: UseCase, routes: usize, seed: u64) -> ChurnRunSpec {
        ChurnRunSpec {
            dut,
            use_case,
            extension: false,
            routes,
            seed,
            shards: 1,
            engine: Engine::default(),
            full_recompute: false,
            check_oracle: true,
            churn: ChurnSpec::new(seed, 12),
            round_interval_ns: 200_000_000,
        }
    }
}

/// Measured outcome of one churn run.
#[derive(Debug, Clone)]
pub struct ChurnOutcome {
    /// Routing updates (announced NLRI + withdrawn prefixes) the DUT
    /// absorbed during the churn phase.
    pub updates_applied: u64,
    /// DUT CPU ns charged during the churn phase (max across shards).
    pub churn_cpu_ns: u64,
    /// `updates_applied` per churn-phase DUT CPU-second.
    pub updates_per_sec: f64,
    /// Virtual ns from the last round leaving the feeder to the DUT's
    /// last best-path change (max across shards).
    pub convergence_ns: u64,
    /// Best-path changes the RIB recorded over the whole run.
    pub best_changes: u64,
    /// Loc-RIB entries differing from the full-recompute oracle (only
    /// populated when [`ChurnRunSpec::check_oracle`] is set; summed
    /// across shards). Anything non-zero is a correctness bug.
    pub oracle_mismatches: usize,
    /// Merged DUT metrics snapshot (RIB gauges, churn counters, …).
    pub metrics: Snapshot,
}

/// Count entries differing between two prefix-sorted Loc-RIB dumps:
/// prefixes present on one side only, plus prefixes whose attribute bytes
/// differ. 0 ⇔ byte-identical.
pub fn dump_diff(a: &[(Ipv4Prefix, Vec<u8>)], b: &[(Ipv4Prefix, Vec<u8>)]) -> usize {
    let (mut i, mut j, mut n) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => {
                n += 1;
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                n += 1;
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                if a[i].1 != b[j].1 {
                    n += 1;
                }
                i += 1;
                j += 1;
            }
        }
    }
    n + (a.len() - i) + (b.len() - j)
}

fn counter(snap: &Snapshot, name: &str) -> u64 {
    snap.metrics
        .iter()
        .filter(|m| m.name == name)
        .map(|m| match m.value {
            MetricValue::Counter(n) => n,
            _ => 0,
        })
        .sum()
}

/// Run one churn experiment. Sharded runs split the table *and* every
/// churn round by prefix hash, run each replica to completion
/// sequentially (uncontended CPU accounting, as in the throughput
/// benches), and merge: updates sum, CPU and convergence take the max
/// (replicas run concurrently in a real deployment), oracle mismatches
/// sum.
pub fn run(spec: &ChurnRunSpec) -> ChurnOutcome {
    let table = routegen::generate(&TableSpec::new(spec.routes, spec.seed));
    // The stream is always derived from the FULL table, then split — so
    // every shard count replays the same logical churn.
    let rounds = churn_rounds(&table, &spec.churn);
    let roas = (spec.use_case == UseCase::OriginValidation).then(|| make_roas(&table, spec.seed));

    let shards = spec.shards.max(1);
    if shards == 1 {
        return run_one(spec, &table, &rounds, roas.as_deref(), 0);
    }

    let mut split_tables: Vec<Vec<Route>> = vec![Vec::new(); shards];
    for r in &table {
        split_tables[shard_of(&r.prefix, shards)].push(r.clone());
    }
    let split_rounds: Vec<Vec<ChurnRound>> = (0..shards)
        .map(|k| {
            rounds
                .iter()
                .map(|round| ChurnRound {
                    withdrawals: round
                        .withdrawals
                        .iter()
                        .filter(|p| shard_of(p, shards) == k)
                        .copied()
                        .collect(),
                    announcements: round
                        .announcements
                        .iter()
                        .filter(|r| shard_of(&r.prefix, shards) == k)
                        .cloned()
                        .collect(),
                })
                .collect()
        })
        .collect();

    let mut merged: Option<ChurnOutcome> = None;
    for k in 0..shards {
        let out = run_one(spec, &split_tables[k], &split_rounds[k], roas.as_deref(), k as u32);
        merged = Some(match merged {
            None => out,
            Some(mut acc) => {
                acc.updates_applied += out.updates_applied;
                acc.churn_cpu_ns = acc.churn_cpu_ns.max(out.churn_cpu_ns);
                acc.convergence_ns = acc.convergence_ns.max(out.convergence_ns);
                acc.best_changes += out.best_changes;
                acc.oracle_mismatches += out.oracle_mismatches;
                acc.metrics.merge(out.metrics).expect("shard snapshots share layouts");
                acc
            }
        });
    }
    let mut out = merged.expect("at least one shard");
    out.updates_per_sec = if out.churn_cpu_ns > 0 {
        out.updates_applied as f64 / (out.churn_cpu_ns as f64 / 1e9)
    } else {
        0.0
    };
    out
}

/// One shard-local churn run: feeder → DUT → sink, two measured phases.
fn run_one(
    spec: &ChurnRunSpec,
    routes: &[Route],
    rounds: &[ChurnRound],
    roas: Option<&[Roa]>,
    shard: u32,
) -> ChurnOutcome {
    let ibgp = spec.use_case == UseCase::RouteReflection;
    let local_pref = ibgp.then_some(100);
    let frames: Vec<Vec<u8>> = to_updates(routes, 1, local_pref)
        .into_iter()
        .map(|u| Message::Update(u).encode(4).expect("update encodes"))
        .collect();
    let round_frames: Vec<Vec<Vec<u8>>> = rounds
        .iter()
        .map(|r| {
            r.to_updates(1, local_pref)
                .into_iter()
                .map(|u| Message::Update(u).encode(4).expect("update encodes"))
                .collect()
        })
        .collect();
    let n_rounds = round_frames.len();
    let stream_updates = total_updates(rounds);

    let (feeder_asn, dut_asn, sink_asn) = if ibgp {
        (65000, 65000, 65000)
    } else {
        (65001, 65002, 65003)
    };

    let mut sim = Sim::new(SimConfig { cpu_accounting: true });
    let f = sim.add_node(Box::new(Feeder::new(feeder_asn, 1, frames)));
    let d = sim.add_node(Box::new(Placeholder));
    let s = sim.add_node(Box::new(Sink::new(sink_asn, 3)));
    let l_up = sim.connect(f, d, 100_000);
    let l_down = sim.connect(d, s, 100_000);

    let (native_roas, ext_roas, manifest): (Option<Vec<Roa>>, Option<Vec<Roa>>, Option<Manifest>) =
        match (spec.use_case, spec.extension) {
            (UseCase::RouteReflection, false) => (None, None, None),
            (UseCase::RouteReflection, true) => (None, None, Some(route_reflect::manifest())),
            (UseCase::OriginValidation, false) => {
                (Some(roas.expect("OV workloads carry ROAs").to_vec()), None, None)
            }
            (UseCase::OriginValidation, true) => (
                None,
                Some(roas.expect("OV workloads carry ROAs").to_vec()),
                Some(origin_validation::manifest()),
            ),
        };

    let mut dspec = DaemonSpec::new(dut_asn, 2);
    dspec = if ibgp {
        dspec.rr_client(l_up, 1, feeder_asn).rr_client(l_down, 3, sink_asn)
    } else {
        dspec.neighbor(l_up, 1, feeder_asn).neighbor(l_down, 3, sink_asn)
    };
    dspec.native_rr = ibgp && !spec.extension;
    dspec.native_rov = native_roas;
    dspec.xbgp_roas = ext_roas;
    dspec.xbgp = manifest;
    dspec.engine = spec.engine;
    dspec.full_recompute = spec.full_recompute;
    sim.replace_node(d, Box::new(build(spec.dut, dspec)));

    const SEC: u64 = 1_000_000_000;
    // Phase 1: initial blast until the sink has the whole shard table,
    // plus a settle window so in-flight exports drain.
    let expected = routes.len();
    let mut deadline = 0u64;
    loop {
        deadline += 120 * SEC;
        sim.run_until(deadline);
        let seen = sim.node_ref::<Sink>(s).prefixes_seen();
        if seen >= expected {
            break;
        }
        assert!(deadline < 1_000_000 * SEC, "blast did not converge: {seen}/{expected}");
    }
    deadline = sim.now() + 5 * SEC;
    sim.run_until(deadline);

    // Baselines at quiescence — the churn phase measures deltas off these.
    let c0 = sim.cpu_time(d);
    let s0 = sim.node_mut::<DutNode>(d).0.counters().routing_updates_rx();

    // Phase 2: load the storm into the feeder (which arms it in the same
    // call) and run until every round is out, then a settle window so the
    // final (restore) round converges.
    sim.node_mut::<Feeder>(f).load_rounds(round_frames, spec.round_interval_ns);
    loop {
        deadline += 120 * SEC;
        sim.run_until(deadline);
        if sim.node_ref::<Feeder>(f).rounds_sent >= n_rounds {
            break;
        }
        assert!(deadline < 2_000_000 * SEC, "churn rounds stalled");
    }
    sim.run_until(sim.now() + 60 * SEC);

    let c1 = sim.cpu_time(d);
    let s1 = sim.node_mut::<DutNode>(d).0.counters().routing_updates_rx();
    let updates_applied = s1 - s0;
    debug_assert_eq!(
        updates_applied, stream_updates,
        "DUT must absorb exactly the generated stream"
    );
    let churn_cpu_ns = c1 - c0;

    let last_round_sent = sim.node_ref::<Feeder>(f).last_round_sent.expect("rounds were sent");
    let (last_change, metrics) = {
        let dm = &sim.node_ref::<DutNode>(d).0;
        (dm.counters().last_route_change, dm.metrics_snapshot())
    };
    let convergence_ns = last_change.map_or(0, |t| t.saturating_sub(last_round_sent));
    let best_changes = counter(&metrics, "xbgp_rib_best_changes_total");

    let oracle_mismatches = if spec.check_oracle {
        let dm = sim.node_mut::<DutNode>(d);
        let incremental = dm.0.loc_rib_dump();
        dump_diff(&incremental, &dm.0.oracle_loc_rib_dump())
    } else {
        0
    };
    let _ = shard; // shards are independent full testbeds; id kept for symmetry

    ChurnOutcome {
        updates_applied,
        churn_cpu_ns,
        updates_per_sec: if churn_cpu_ns > 0 {
            updates_applied as f64 / (churn_cpu_ns as f64 / 1e9)
        } else {
            0.0
        },
        convergence_ns,
        best_changes,
        oracle_mismatches,
        metrics,
    }
}

struct Placeholder;
impl netsim::Node for Placeholder {
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_run_measures_and_matches_oracle() {
        for dut in [Dut::Fir, Dut::Wren] {
            let mut spec = ChurnRunSpec::new(dut, UseCase::OriginValidation, 400, 7);
            spec.churn.rounds = 6;
            let out = run(&spec);
            assert!(out.updates_applied > 0, "{}: churn stream absorbed", dut.name());
            assert!(out.best_changes > 0, "{}: best paths changed", dut.name());
            assert!(out.updates_per_sec > 0.0);
            assert_eq!(out.oracle_mismatches, 0, "{}: incremental ≡ oracle", dut.name());
        }
    }

    #[test]
    fn sharded_churn_self_checks_each_replica() {
        let mut spec = ChurnRunSpec::new(Dut::Fir, UseCase::OriginValidation, 400, 9);
        spec.churn.rounds = 5;
        spec.shards = 4;
        let out = run(&spec);
        let single = run(&ChurnRunSpec { shards: 1, ..spec });
        assert_eq!(out.updates_applied, single.updates_applied, "same logical stream");
        assert_eq!(out.oracle_mismatches, 0);
        assert_eq!(single.oracle_mismatches, 0);
        assert!(out.best_changes > 0);
    }

    #[test]
    fn extension_churn_stays_oracle_clean() {
        let mut spec = ChurnRunSpec::new(Dut::Wren, UseCase::RouteReflection, 300, 11);
        spec.churn.rounds = 5;
        spec.extension = true;
        let out = run(&spec);
        assert_eq!(out.oracle_mismatches, 0);
        assert!(out.best_changes > 0);
    }

    #[test]
    fn full_recompute_baseline_is_equivalent_but_measured() {
        let mut spec = ChurnRunSpec::new(Dut::Fir, UseCase::OriginValidation, 300, 13);
        spec.churn.rounds = 5;
        let inc = run(&spec);
        let full = run(&ChurnRunSpec { full_recompute: true, ..spec });
        assert_eq!(inc.oracle_mismatches, 0);
        assert_eq!(full.oracle_mismatches, 0);
        assert_eq!(inc.updates_applied, full.updates_applied);
        assert!(full.churn_cpu_ns > 0 && inc.churn_cpu_ns > 0);
    }

    #[test]
    fn dump_diff_counts_all_divergences() {
        let p = |s: &str| -> Ipv4Prefix { s.parse().unwrap() };
        let a = vec![(p("10.0.0.0/24"), vec![1]), (p("10.0.1.0/24"), vec![2])];
        let b = vec![(p("10.0.0.0/24"), vec![1]), (p("10.0.1.0/24"), vec![3])];
        assert_eq!(dump_diff(&a, &a), 0);
        assert_eq!(dump_diff(&a, &b), 1);
        let c = vec![(p("10.0.0.0/24"), vec![1])];
        assert_eq!(dump_diff(&a, &c), 1);
        assert_eq!(dump_diff(&c, &a), 1);
        assert_eq!(dump_diff(&a, &[]), 2);
    }
}
