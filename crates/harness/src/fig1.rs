//! Fig. 1 — the standardization-delay CDF.
//!
//! The paper plots the delay between the first IETF draft and RFC
//! publication for the last 40 BGP RFCs (as of 2020), reporting a median
//! of 3.5 years and a tail reaching ten years. The underlying datatracker
//! extract is not redistributable offline, so the series below is a
//! **reconstruction**: 40 delays whose distribution matches the published
//! CDF's anchors (see EXPERIMENTS.md). Each entry carries the RFC number
//! it stands in for.

/// `(RFC number, delay in years from first draft to publication)`.
///
/// The RFC list is the set of IDR-produced BGP RFCs in the years leading
/// up to 2020; delays are reconstructed to match Fig. 1's curve.
pub const BGP_RFC_DELAYS: [(u32, f64); 40] = [
    (4271, 6.1),  // BGP-4 (draft-ietf-idr-bgp4)
    (4360, 4.2),  // Extended Communities
    (4456, 3.1),  // Route Reflection
    (4724, 3.7),  // Graceful Restart
    (4760, 5.3),  // Multiprotocol Extensions
    (4761, 2.9),  // VPLS BGP
    (4781, 1.9),  // Graceful Restart for BGP/MPLS
    (4798, 2.2),  // 6PE
    (5004, 3.3),  // Avoid route oscillation
    (5065, 3.4),  // AS Confederations
    (5082, 2.4),  // GTSM
    (5291, 3.9),  // ORF
    (5292, 3.6),  // Prefix-based ORF
    (5396, 1.0),  // AS number representation
    (5492, 4.5),  // Capabilities Advertisement
    (5543, 2.6),  // BGP Traffic Engineering Attribute
    (5575, 2.8),  // Flowspec
    (5668, 1.6),  // 4-octet AS extended communities
    (6286, 5.6),  // AS-wide unique BGP identifier
    (6368, 3.0),  // P-router internal BGP
    (6393, 1.2),  // MED considerations
    (6472, 4.8),  // AS_SET deprecation
    (6793, 6.6),  // 4-octet ASN
    (6810, 3.5),  // RPKI to Router
    (6811, 3.5),  // Prefix Origin Validation
    (6996, 2.0),  // Private ASN reservation
    (7153, 2.3),  // SAFI registry
    (7196, 3.2),  // Flowspec redirect
    (7300, 1.4),  // Last AS reservation
    (7311, 4.0),  // AIGP
    (7313, 2.5),  // Enhanced Route Refresh
    (7606, 7.3),  // Revised Error Handling (famously slow)
    (7607, 1.1),  // AS 0 processing
    (7705, 2.7),  // AS migration
    (7911, 5.9),  // ADD-PATH (the canonical decade-long draft)
    (7999, 3.8),  // BLACKHOLE community
    (8092, 4.3),  // Large Communities (fast by community demand)
    (8203, 3.5),  // Shutdown Communication
    (8205, 10.2), // BGPsec (the ten-year tail)
    (8212, 4.9),  // Default EBGP policy
];

/// The CDF as `(delay_years, cumulative_fraction)` steps, sorted.
pub fn cdf() -> Vec<(f64, f64)> {
    let mut delays: Vec<f64> = BGP_RFC_DELAYS.iter().map(|(_, d)| *d).collect();
    delays.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
    let n = delays.len() as f64;
    delays.iter().enumerate().map(|(i, &d)| (d, (i + 1) as f64 / n)).collect()
}

/// Median delay in years (the paper's headline 3.5).
pub fn median_delay() -> f64 {
    let c = cdf();
    let mid = c.len() / 2;
    (c[mid - 1].0 + c[mid].0) / 2.0
}

/// Maximum delay in years (the ~10-year tail).
pub fn max_delay() -> f64 {
    cdf().last().expect("non-empty dataset").0
}

/// Render the CDF as fixed-width text rows: `delay_years cum_fraction`.
pub fn render() -> String {
    let mut out = String::new();
    out.push_str("# Fig. 1 — CDF of standardization delay, last 40 BGP RFCs\n");
    out.push_str("# delay_years  cdf\n");
    for (d, f) in cdf() {
        out.push_str(&format!("{d:6.2}  {f:5.3}\n"));
    }
    out.push_str(&format!(
        "# median = {:.2} years, max = {:.2} years\n",
        median_delay(),
        max_delay()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_has_forty_unique_rfcs() {
        let mut nums: Vec<u32> = BGP_RFC_DELAYS.iter().map(|(n, _)| *n).collect();
        nums.sort();
        nums.dedup();
        assert_eq!(nums.len(), 40);
    }

    #[test]
    fn cdf_is_monotone_and_normalized() {
        let c = cdf();
        assert_eq!(c.len(), 40);
        for w in c.windows(2) {
            assert!(w[0].0 <= w[1].0, "delays sorted");
            assert!(w[0].1 < w[1].1, "cdf strictly increasing");
        }
        assert!((c.last().unwrap().1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn matches_the_papers_anchors() {
        assert!(
            (median_delay() - 3.5).abs() <= 0.1,
            "median {} ≠ paper's 3.5 years",
            median_delay()
        );
        assert!(max_delay() >= 10.0, "the ten-year tail exists");
        assert!(max_delay() <= 10.5);
    }

    #[test]
    fn render_contains_every_row() {
        let text = render();
        assert_eq!(text.lines().filter(|l| !l.starts_with('#')).count(), 40);
    }
}
