//! Run statistics: the five-number summaries behind Fig. 4's boxplots.

use std::fmt;

/// Five-number summary plus the mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    pub min: f64,
    pub q1: f64,
    pub median: f64,
    pub q3: f64,
    pub max: f64,
    pub mean: f64,
}

/// An empty sample has no quantiles. Surfaced as an explicit error
/// (matching the [`WeightMismatch`] convention) instead of a silent
/// all-zero summary: a figure cell with zero completed runs is a harness
/// bug the caller must attribute, not a boxplot collapsed onto zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmptySample;

impl fmt::Display for EmptySample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot summarize an empty sample")
    }
}

impl std::error::Error for EmptySample {}

/// Linear-interpolation quantile of a sorted slice (type-7, the common
/// default of numpy/matplotlib, which the paper's boxplots use). A
/// single-element slice is its own quantile at every `q`; an empty slice
/// is an [`EmptySample`] error.
pub fn quantile(sorted: &[f64], q: f64) -> Result<f64, EmptySample> {
    if sorted.is_empty() {
        return Err(EmptySample);
    }
    if sorted.len() == 1 {
        return Ok(sorted[0]);
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Ok(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
}

/// Summarize a sample. An empty slice is an [`EmptySample`] error; a
/// single-element sample is a legal (degenerate) boxplot with every
/// statistic equal to that element.
pub fn summarize(values: &[f64]) -> Result<Summary, EmptySample> {
    if values.is_empty() {
        return Err(EmptySample);
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in measurements"));
    Ok(Summary {
        min: sorted[0],
        q1: quantile(&sorted, 0.25).expect("non-empty"),
        median: quantile(&sorted, 0.5).expect("non-empty"),
        q3: quantile(&sorted, 0.75).expect("non-empty"),
        max: *sorted.last().expect("non-empty"),
        mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
    })
}

/// Mismatched `summarize_weighted` inputs: every value needs exactly one
/// weight. Surfaced as an explicit error (not a panic) so aggregation
/// callers can attribute the bad input to its source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WeightMismatch {
    pub values: usize,
    pub weights: usize,
}

impl fmt::Display for WeightMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "weighted summary needs one weight per value: got {} value(s), {} weight(s)",
            self.values, self.weights
        )
    }
}

impl std::error::Error for WeightMismatch {}

/// Weighted five-number summary: each value counts `weight` times, as if
/// the sample were expanded into a multiset (quantiles are type-7 over
/// that expansion; the mean is weight-averaged). Zero-weight entries are
/// dropped; mismatched slice lengths are a [`WeightMismatch`] error.
///
/// The shard aggregation path weights per-shard figures by the routes
/// each shard *actually* processed: when `routes % shards != 0` the last
/// shard is smaller, and an unweighted summary would let it skew
/// per-route statistics as if it were a full-size peer.
pub fn summarize_weighted(values: &[f64], weights: &[u64]) -> Result<Summary, WeightMismatch> {
    if values.len() != weights.len() {
        return Err(WeightMismatch { values: values.len(), weights: weights.len() });
    }
    let mut pairs: Vec<(f64, u64)> = values
        .iter()
        .copied()
        .zip(weights.iter().copied())
        .filter(|&(_, w)| w > 0)
        .collect();
    if pairs.is_empty() {
        return Ok(Summary { min: 0.0, q1: 0.0, median: 0.0, q3: 0.0, max: 0.0, mean: 0.0 });
    }
    pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaNs in measurements"));
    let total: u64 = pairs.iter().map(|&(_, w)| w).sum();
    // Value at index `i` of the expanded, sorted multiset.
    let at = |i: u64| -> f64 {
        let mut cum = 0u64;
        for &(v, w) in &pairs {
            cum += w;
            if i < cum {
                return v;
            }
        }
        pairs.last().expect("non-empty").0
    };
    let q = |q: f64| -> f64 {
        if total == 1 {
            return pairs[0].0;
        }
        let pos = q * (total - 1) as f64;
        let (lo, hi) = (pos.floor() as u64, pos.ceil() as u64);
        let frac = pos - lo as f64;
        at(lo) + (at(hi) - at(lo)) * frac
    };
    Ok(Summary {
        min: pairs[0].0,
        q1: q(0.25),
        median: q(0.5),
        q3: q(0.75),
        max: pairs.last().expect("non-empty").0,
        mean: pairs.iter().map(|&(v, w)| v * w as f64).sum::<f64>() / total as f64,
    })
}

/// Relative impact in percent: `(ext - native) / native * 100` (Fig. 4's
/// y-axis). A zero (or non-finite) native baseline yields 0 instead of
/// dividing by it.
pub fn relative_impact_pct(native: f64, extension: f64) -> f64 {
    if native == 0.0 || !native.is_finite() || !extension.is_finite() {
        return 0.0;
    }
    (extension - native) / native * 100.0
}

/// Render a summary as a one-line text boxplot.
pub fn render(s: &Summary) -> String {
    format!(
        "min {:+7.2}%  q1 {:+7.2}%  median {:+7.2}%  q3 {:+7.2}%  max {:+7.2}%  (mean {:+7.2}%)",
        s.min, s.q1, s.median, s.q3, s.max, s.mean
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_number_summary_of_known_sample() {
        let s = summarize(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.q3, 4.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.mean, 3.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let s = summarize(&[0.0, 10.0]).unwrap();
        assert_eq!(s.q1, 2.5);
        assert_eq!(s.median, 5.0);
        assert_eq!(s.q3, 7.5);
    }

    #[test]
    fn single_sample_is_a_degenerate_boxplot_not_an_error() {
        let s = summarize(&[42.0]).unwrap();
        assert_eq!(s.min, 42.0);
        assert_eq!(s.q1, 42.0);
        assert_eq!(s.median, 42.0);
        assert_eq!(s.q3, 42.0);
        assert_eq!(s.max, 42.0);
        assert_eq!(s.mean, 42.0);
        assert_eq!(quantile(&[42.0], 0.99), Ok(42.0));
    }

    #[test]
    fn relative_impact() {
        assert_eq!(relative_impact_pct(100.0, 120.0), 20.0);
        assert_eq!(relative_impact_pct(100.0, 90.0), -10.0);
    }

    #[test]
    fn empty_sample_is_a_typed_error_not_a_zeroed_summary() {
        let err = summarize(&[]).unwrap_err();
        assert_eq!(err, EmptySample);
        assert!(err.to_string().contains("empty sample"), "{err}");
        assert_eq!(quantile(&[], 0.5), Err(EmptySample));
    }

    #[test]
    fn zero_or_nonfinite_baseline_yields_zero_impact() {
        assert_eq!(relative_impact_pct(0.0, 120.0), 0.0);
        assert_eq!(relative_impact_pct(f64::NAN, 120.0), 0.0);
        assert_eq!(relative_impact_pct(100.0, f64::INFINITY), 0.0);
    }

    #[test]
    fn unit_weights_match_unweighted_summary() {
        let vals = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(summarize_weighted(&vals, &[1; 5]).unwrap(), summarize(&vals).unwrap());
    }

    #[test]
    fn mismatched_lengths_are_an_error_not_a_panic() {
        let err = summarize_weighted(&[1.0, 2.0], &[1]).unwrap_err();
        assert_eq!(err, WeightMismatch { values: 2, weights: 1 });
        assert!(err.to_string().contains("2 value(s), 1 weight(s)"), "{err}");
    }

    #[test]
    fn weighted_summary_equals_expanded_multiset() {
        // Four shards of a 910-route table: three full shards of 300 and
        // an uneven last shard of 10 (the edge case: routes don't divide
        // evenly by shards).
        let vals = [10.0, 12.0, 11.0, 100.0];
        let weights = [300u64, 300, 300, 10];
        let mut expanded = Vec::new();
        for (&v, &w) in vals.iter().zip(&weights) {
            expanded.extend(std::iter::repeat_n(v, w as usize));
        }
        let w = summarize_weighted(&vals, &weights).unwrap();
        let e = summarize(&expanded).unwrap();
        for (a, b) in [
            (w.min, e.min),
            (w.q1, e.q1),
            (w.median, e.median),
            (w.q3, e.q3),
            (w.max, e.max),
            (w.mean, e.mean),
        ] {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
        // And the straggler must NOT pull the median/mean as a full peer:
        // an unweighted summary would put the mean at 33.25.
        assert!(w.mean < 12.0, "weighted mean {}", w.mean);
    }

    #[test]
    fn zero_weights_are_dropped() {
        let s = summarize_weighted(&[1.0, 99.0], &[5, 0]).unwrap();
        assert_eq!(s.max, 1.0);
        assert_eq!(s.mean, 1.0);
        let empty = summarize_weighted(&[], &[]).unwrap();
        assert_eq!(empty.mean, 0.0);
    }
}
