//! Run statistics: the five-number summaries behind Fig. 4's boxplots.

/// Five-number summary plus the mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    pub min: f64,
    pub q1: f64,
    pub median: f64,
    pub q3: f64,
    pub max: f64,
    pub mean: f64,
}

/// Linear-interpolation quantile of a sorted slice (type-7, the common
/// default of numpy/matplotlib, which the paper's boxplots use).
fn quantile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty());
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Summarize a sample. An empty slice yields an all-zero summary rather
/// than panicking, so a cell with no completed runs still renders.
pub fn summarize(values: &[f64]) -> Summary {
    if values.is_empty() {
        return Summary { min: 0.0, q1: 0.0, median: 0.0, q3: 0.0, max: 0.0, mean: 0.0 };
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in measurements"));
    Summary {
        min: sorted[0],
        q1: quantile(&sorted, 0.25),
        median: quantile(&sorted, 0.5),
        q3: quantile(&sorted, 0.75),
        max: *sorted.last().expect("non-empty"),
        mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
    }
}

/// Relative impact in percent: `(ext - native) / native * 100` (Fig. 4's
/// y-axis). A zero (or non-finite) native baseline yields 0 instead of
/// dividing by it.
pub fn relative_impact_pct(native: f64, extension: f64) -> f64 {
    if native == 0.0 || !native.is_finite() || !extension.is_finite() {
        return 0.0;
    }
    (extension - native) / native * 100.0
}

/// Render a summary as a one-line text boxplot.
pub fn render(s: &Summary) -> String {
    format!(
        "min {:+7.2}%  q1 {:+7.2}%  median {:+7.2}%  q3 {:+7.2}%  max {:+7.2}%  (mean {:+7.2}%)",
        s.min, s.q1, s.median, s.q3, s.max, s.mean
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_number_summary_of_known_sample() {
        let s = summarize(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.q3, 4.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.mean, 3.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let s = summarize(&[0.0, 10.0]);
        assert_eq!(s.q1, 2.5);
        assert_eq!(s.median, 5.0);
        assert_eq!(s.q3, 7.5);
    }

    #[test]
    fn single_sample() {
        let s = summarize(&[42.0]);
        assert_eq!(s.min, 42.0);
        assert_eq!(s.median, 42.0);
        assert_eq!(s.max, 42.0);
    }

    #[test]
    fn relative_impact() {
        assert_eq!(relative_impact_pct(100.0, 120.0), 20.0);
        assert_eq!(relative_impact_pct(100.0, 90.0), -10.0);
    }

    #[test]
    fn empty_sample_yields_zeroed_summary() {
        let s = summarize(&[]);
        assert_eq!(s, Summary { min: 0.0, q1: 0.0, median: 0.0, q3: 0.0, max: 0.0, mean: 0.0 });
    }

    #[test]
    fn zero_or_nonfinite_baseline_yields_zero_impact() {
        assert_eq!(relative_impact_pct(0.0, 120.0), 0.0);
        assert_eq!(relative_impact_pct(f64::NAN, 120.0), 0.0);
        assert_eq!(relative_impact_pct(100.0, f64::INFINITY), 0.0);
    }
}
