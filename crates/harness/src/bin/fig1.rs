//! Regenerate Fig. 1: the CDF of BGP standardization delays.

fn main() {
    print!("{}", xbgp_harness::fig1::render());
}
