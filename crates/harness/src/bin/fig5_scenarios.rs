//! Regenerate the Fig. 5 narrative: datacenter connectivity under the
//! same-ASN trick versus the xBGP valley-free filter, before and after
//! the double link failure L10–S1 / L13–S2.
//!
//! This binary re-runs the four scenarios of tests/valley_free_e2e.rs and
//! prints a table instead of asserting.

use bgp_fir::{FirConfig, FirDaemon};
use netsim::{LinkId, NodeId, Sim, SimConfig};
use xbgp_progs::valley_free;
use xbgp_wire::Ipv4Prefix;

const MS: u64 = 1_000_000;
const SEC: u64 = 1_000_000_000;
const S1: usize = 0;
const S2: usize = 1;
const LEAVES: [usize; 4] = [2, 3, 4, 5];

fn p(s: &str) -> Ipv4Prefix {
    s.parse().unwrap()
}

struct Ph;
impl netsim::Node for Ph {
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

fn build(asns: [u32; 6], xbgp: bool) -> (Sim, Vec<NodeId>, LinkId, LinkId) {
    let mut sim = Sim::new(SimConfig::default());
    let nodes: Vec<NodeId> = (0..6).map(|_| sim.add_node(Box::new(Ph))).collect();
    let ids: [u32; 6] = [201, 202, 110, 111, 112, 113];
    let mut links = vec![];
    for leaf in LEAVES {
        for spine in [S1, S2] {
            links.push(((leaf, spine), sim.connect(nodes[leaf], nodes[spine], MS)));
        }
    }
    let link = |a: usize, b: usize| -> LinkId {
        links
            .iter()
            .find(|((l, s), _)| (*l == a && *s == b) || (*l == b && *s == a))
            .expect("link exists")
            .1
    };
    let pairs: Vec<(u32, u32)> = LEAVES
        .iter()
        .flat_map(|&l| [(asns[l], asns[S1]), (asns[l], asns[S2])])
        .collect();
    let manifest = valley_free::manifest(&pairs, p("10.0.0.0/8"));
    for i in 0..6 {
        let mut cfg = FirConfig::new(asns[i], ids[i]);
        let nbs: Vec<usize> = if i < 2 { LEAVES.to_vec() } else { vec![S1, S2] };
        for nb in nbs {
            cfg = cfg.neighbor(link(i, nb), ids[nb], asns[nb]);
        }
        if i == 5 {
            cfg.originate = vec![(p("10.13.0.0/16"), ids[5])];
        }
        if i == S1 {
            cfg.originate = vec![(p("192.0.2.0/24"), ids[S1])];
        }
        if xbgp {
            cfg.xbgp = Some(manifest.clone());
        }
        sim.replace_node(nodes[i], Box::new(FirDaemon::new(cfg)));
    }
    let a = link(2, S1);
    let b = link(5, S2);
    (sim, nodes, a, b)
}

fn reaches(sim: &mut Sim, node: NodeId, prefix: &str) -> &'static str {
    if sim.node_ref::<FirDaemon>(node).best_route(&p(prefix)).is_some() {
        "yes"
    } else {
        "NO"
    }
}

fn scenario(name: &str, asns: [u32; 6], xbgp: bool) {
    let (mut sim, nodes, l10s1, l13s2) = build(asns, xbgp);
    sim.run_until(20 * SEC);
    let healthy = reaches(&mut sim, nodes[2], "10.13.0.0/16");
    let ext_at_s2 = reaches(&mut sim, nodes[1], "192.0.2.0/24");
    sim.set_link_up(l10s1, false);
    sim.set_link_up(l13s2, false);
    sim.run_until(90 * SEC);
    let after = reaches(&mut sim, nodes[2], "10.13.0.0/16");
    println!("{name:<34} | {healthy:^18} | {after:^23} | {ext_at_s2:^22}",);
}

fn main() {
    println!("# Fig. 5 scenarios — L10's reachability of the prefix below L13");
    println!(
        "{:<34} | {:^18} | {:^23} | {:^22}",
        "configuration", "healthy fabric", "after double failure", "ext. prefix leaks to S2"
    );
    println!("{}", "-".repeat(108));
    scenario(
        "same-ASN trick (paper default)",
        [65200, 65200, 65100, 65100, 65110, 65110],
        false,
    );
    scenario("distinct ASNs, no filter", [65201, 65202, 65101, 65102, 65103, 65104], false);
    scenario(
        "distinct ASNs + xBGP valley-free",
        [65201, 65202, 65101, 65102, 65103, 65104],
        true,
    );
    println!(
        "\nThe xBGP row keeps connectivity after the double failure while\n\
         still blocking external-prefix valleys — §3.3's claim."
    );
}
