//! xbgp-sim — run a declarative network scenario.
//!
//! Usage: xbgp-sim <scenario.json>
//!
//! See `xbgp_harness::scenario` for the document format. Exit code 0 when
//! every `expect_route` check passes, 1 otherwise.

use std::process::ExitCode;

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: xbgp-sim <scenario.json>");
        return ExitCode::from(2);
    };
    let json = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let scenario = match xbgp_harness::scenario::parse(&json) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("invalid scenario: {e}");
            return ExitCode::from(2);
        }
    };
    match xbgp_harness::scenario::run(&scenario) {
        Ok(report) => {
            println!("scenario: {}", report.name);
            for (desc, ok) in &report.checks {
                println!("  [{}] {desc}", if *ok { "PASS" } else { "FAIL" });
            }
            println!("final tables:");
            for (router, n) in &report.tables {
                println!("  {router:<16} {n} route(s)");
            }
            if report.all_passed() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("scenario failed to run: {e}");
            ExitCode::from(2)
        }
    }
}
