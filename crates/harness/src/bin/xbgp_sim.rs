//! xbgp-sim — run a declarative network scenario.
//!
//! Usage: xbgp-sim <scenario.json> [--shards N] [--metrics-out FILE]
//!                 [--log-level LEVEL] [--fault-rate R]
//!                 [--trace-out FILE] [--trace-sample N] [--profile]
//!                 [--engine interp|compiled]
//!                 [--churn-feed ROUTER] [--churn-routes N] [--churn-rounds N]
//!                 [--churn-seed N] [--churn-withdraw N‰] [--churn-reannounce N‰]
//!                 [--churn-flap N‰] [--churn-flap-period N] [--churn-roa-sweep N‰]
//!                 [--churn-hunt-depth N] [--churn-interval-ms N] [--check-oracle]
//!
//! See `xbgp_harness::scenario` for the document format. Exit code 0 when
//! every `expect_route` check passes, 1 otherwise. `--metrics-out` writes
//! the final per-router metrics snapshot as a JSON document. `--shards N`
//! splits originated prefixes across N replica simulations on worker
//! threads (see `xbgp_harness::shard`); `--shards 1` is the sequential
//! path. `--fault-rate R` (in `[0, 1]`) overrides the scenario's
//! `fault_rate`: every router gets the `fault_inject` probe, which traps
//! mid-chain after staging host mutations on roughly that fraction of
//! inbound runs — a live check that transactional rollback holds under
//! the scenario's real workload.
//!
//! `--trace-out FILE` attaches a route-scoped flight recorder to every
//! router and writes the merged timeline: Chrome/Perfetto `trace_event`
//! JSON when FILE ends in `.chrome.json`, JSONL (one event or postmortem
//! per line) otherwise. `--trace-sample N` traces 1 route in N (default 1
//! — every route — when `--trace-out` is given). `--profile` turns on the
//! per-extension VM profiler; its `xbgp_prof_*` series land in the
//! `--metrics-out` snapshot. `--engine` picks the bytecode execution
//! engine for every router (default: the interpreter); routing outcomes
//! are engine-invariant.
//!
//! The `--churn-*` family overrides (or, with `--churn-feed`, creates)
//! the scenario's `churn` section: a synthetic upstream blasts a
//! generated table at the named router, then replays a seeded storm of
//! withdraw/re-announce rounds, flaps, ROA sweeps and path-hunting
//! cascades. `--check-oracle` forces the end-of-run Loc-RIB comparison
//! against the full-recompute oracle (a mismatch fails the run like any
//! missed `expect_route`). Per-mille flags take 0–1000.

use std::process::ExitCode;
use xbgp_harness::scenario::RunOptions;
use xbgp_obs::export;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scenario_path: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut trace_sample = 0u64;
    let mut profile = false;
    let mut engine = xbgp_core::Engine::default();
    let mut shards = 1usize;
    let mut fault_rate: Option<f64> = None;
    let mut churn_feed: Option<String> = None;
    let mut churn_over: Vec<(&'static str, u64)> = Vec::new();
    let mut check_oracle = false;
    let mut i = 0;
    while i < args.len() {
        // Numeric --churn-* overrides share one parse path.
        let churn_key = match args[i].as_str() {
            "--churn-routes" => Some("routes"),
            "--churn-rounds" => Some("rounds"),
            "--churn-seed" => Some("seed"),
            "--churn-withdraw" => Some("withdraw_per_mille"),
            "--churn-reannounce" => Some("reannounce_per_mille"),
            "--churn-flap" => Some("flap_per_mille"),
            "--churn-flap-period" => Some("flap_period"),
            "--churn-roa-sweep" => Some("roa_sweep_per_mille"),
            "--churn-hunt-depth" => Some("path_hunt_depth"),
            "--churn-interval-ms" => Some("interval_ms"),
            _ => None,
        };
        if let Some(key) = churn_key {
            let Some(n) = args.get(i + 1).and_then(|s| s.parse::<u64>().ok()) else {
                xbgp_obs::error!("{} needs a non-negative number", args[i]);
                return ExitCode::from(2);
            };
            if key.ends_with("per_mille") && n > 1000 {
                xbgp_obs::error!("{} is per-mille, must be <= 1000", args[i]);
                return ExitCode::from(2);
            }
            churn_over.push((key, n));
            i += 2;
            continue;
        }
        match args[i].as_str() {
            "--churn-feed" => {
                let Some(name) = args.get(i + 1) else {
                    xbgp_obs::error!("missing value after --churn-feed");
                    return ExitCode::from(2);
                };
                churn_feed = Some(name.clone());
                i += 2;
            }
            "--check-oracle" => {
                check_oracle = true;
                i += 1;
            }
            "--shards" => {
                let Some(n) = args.get(i + 1).and_then(|s| s.parse::<usize>().ok()) else {
                    xbgp_obs::error!("--shards needs a positive number");
                    return ExitCode::from(2);
                };
                if n == 0 {
                    xbgp_obs::error!("--shards must be at least 1");
                    return ExitCode::from(2);
                }
                shards = n;
                i += 2;
            }
            "--metrics-out" => {
                let Some(path) = args.get(i + 1) else {
                    xbgp_obs::error!("missing value after --metrics-out");
                    return ExitCode::from(2);
                };
                metrics_out = Some(path.clone());
                i += 2;
            }
            "--trace-out" => {
                let Some(path) = args.get(i + 1) else {
                    xbgp_obs::error!("missing value after --trace-out");
                    return ExitCode::from(2);
                };
                trace_out = Some(path.clone());
                i += 2;
            }
            "--trace-sample" => {
                let Some(n) = args.get(i + 1).and_then(|s| s.parse::<u64>().ok()) else {
                    xbgp_obs::error!("--trace-sample needs a positive number");
                    return ExitCode::from(2);
                };
                if n == 0 {
                    xbgp_obs::error!("--trace-sample must be at least 1");
                    return ExitCode::from(2);
                }
                trace_sample = n;
                i += 2;
            }
            "--profile" => {
                profile = true;
                i += 1;
            }
            "--engine" => {
                let parsed = args.get(i + 1).map(|s| s.parse::<xbgp_core::Engine>());
                match parsed {
                    Some(Ok(e)) => engine = e,
                    Some(Err(e)) => {
                        xbgp_obs::error!("{e}");
                        return ExitCode::from(2);
                    }
                    None => {
                        xbgp_obs::error!("missing value after --engine");
                        return ExitCode::from(2);
                    }
                }
                i += 2;
            }
            "--fault-rate" => {
                let Some(r) = args.get(i + 1).and_then(|s| s.parse::<f64>().ok()) else {
                    xbgp_obs::error!("--fault-rate needs a number in [0, 1]");
                    return ExitCode::from(2);
                };
                if !(0.0..=1.0).contains(&r) {
                    xbgp_obs::error!("--fault-rate must be in [0, 1], got {r}");
                    return ExitCode::from(2);
                }
                fault_rate = Some(r);
                i += 2;
            }
            "--log-level" => {
                let Some(level) =
                    args.get(i + 1).and_then(|s| xbgp_obs::logging::Level::from_str_loose(s))
                else {
                    xbgp_obs::error!("--log-level needs error|warn|info|debug|trace");
                    return ExitCode::from(2);
                };
                xbgp_obs::logging::set_level(level);
                i += 2;
            }
            other if scenario_path.is_none() && !other.starts_with('-') => {
                scenario_path = Some(other.to_string());
                i += 1;
            }
            other => {
                xbgp_obs::error!("unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let Some(path) = scenario_path else {
        xbgp_obs::error!(
            "usage: xbgp-sim <scenario.json> [--shards N] [--metrics-out FILE] \
             [--fault-rate R] [--trace-out FILE] [--trace-sample N] [--profile] \
             [--engine interp|compiled] [--churn-feed ROUTER] [--churn-routes N] \
             [--churn-rounds N] [--churn-seed N] [--churn-withdraw N] \
             [--churn-reannounce N] [--churn-flap N] [--churn-flap-period N] \
             [--churn-roa-sweep N] [--churn-hunt-depth N] [--churn-interval-ms N] \
             [--check-oracle]"
        );
        return ExitCode::from(2);
    };
    if trace_out.is_some() && trace_sample == 0 {
        trace_sample = 1;
    }
    let json = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            xbgp_obs::error!("cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let mut scenario = match xbgp_harness::scenario::parse(&json) {
        Ok(s) => s,
        Err(e) => {
            xbgp_obs::error!("invalid scenario: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(r) = fault_rate {
        scenario.fault_rate = r;
    }
    if let Some(feed) = churn_feed {
        match &mut scenario.churn {
            Some(c) => c.feed = feed,
            None => {
                scenario.churn = Some(xbgp_harness::scenario::ChurnSection::new(&feed, 10_000));
            }
        }
    }
    if !churn_over.is_empty() || check_oracle {
        let Some(c) = scenario.churn.as_mut() else {
            xbgp_obs::error!(
                "--churn-*/--check-oracle need a `churn` section in the scenario \
                 or --churn-feed ROUTER"
            );
            return ExitCode::from(2);
        };
        for (key, n) in churn_over {
            match key {
                "routes" => c.routes = n as usize,
                "rounds" => c.rounds = n as usize,
                "seed" => c.seed = n,
                "withdraw_per_mille" => c.withdraw_per_mille = n as u32,
                "reannounce_per_mille" => c.reannounce_per_mille = n as u32,
                "flap_per_mille" => c.flap_per_mille = n as u32,
                "flap_period" => c.flap_period = n as usize,
                "roa_sweep_per_mille" => c.roa_sweep_per_mille = n as u32,
                "path_hunt_depth" => c.path_hunt_depth = n as usize,
                "interval_ms" => c.interval_ms = n,
                _ => unreachable!("key list is closed"),
            }
        }
        if check_oracle {
            c.check_oracle = true;
        }
    }
    let opts = RunOptions { trace_sample, profile, shard_base: 0, engine };
    match xbgp_harness::scenario::run_sharded_with_options(&scenario, shards, &opts) {
        Ok(report) => {
            println!("scenario: {}", report.name);
            for (desc, ok) in &report.checks {
                println!("  [{}] {desc}", if *ok { "PASS" } else { "FAIL" });
            }
            println!("final tables:");
            for (router, n) in &report.tables {
                println!("  {router:<16} {n} route(s)");
            }
            if scenario.churn.is_some() {
                let applied = report.metrics.counter_sum("xbgp_rib_updates_applied_total");
                let withdrawn = report.metrics.counter_sum("xbgp_rib_withdrawals_total");
                let changes = report.metrics.counter_sum("xbgp_rib_best_changes_total");
                println!(
                    "churn: {applied} update(s) applied, {withdrawn} withdrawal(s), \
                     {changes} best-path change(s)"
                );
            }
            if scenario.fault_rate > 0.0 {
                let faults = report.metrics.counter_sum("xbgp_vmm_errors_total");
                let rollbacks = report.metrics.counter_sum("xbgp_vmm_rollbacks_total");
                let quarantines = report.metrics.counter_sum("xbgp_vmm_quarantines_total");
                println!(
                    "fault injection: {faults} fault(s), {rollbacks} rollback(s), \
                     {quarantines} quarantine(s)"
                );
            }
            if let Some(out) = metrics_out {
                let doc = export::to_json(&report.metrics).to_string_pretty();
                if let Err(e) = std::fs::write(&out, doc) {
                    xbgp_obs::error!("cannot write metrics to {out}: {e}");
                    return ExitCode::from(2);
                }
                xbgp_obs::info!("metrics written to {out}");
            }
            if let Some(out) = trace_out {
                let dump = report.trace.as_ref().expect("tracing was enabled");
                let names = xbgp_harness::trace_point_names();
                let doc = if out.ends_with(".chrome.json") {
                    dump.to_chrome(&names).to_string_pretty()
                } else {
                    dump.to_jsonl(&names)
                };
                if let Err(e) = std::fs::write(&out, doc) {
                    xbgp_obs::error!("cannot write trace to {out}: {e}");
                    return ExitCode::from(2);
                }
                xbgp_obs::info!(
                    "trace written to {out}: {} event(s), {} postmortem(s)",
                    dump.events.len(),
                    dump.postmortems.len()
                );
            }
            if report.all_passed() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            xbgp_obs::error!("scenario failed to run: {e}");
            ExitCode::from(2)
        }
    }
}
