//! Regenerate Fig. 4: relative performance impact of extension bytecode
//! versus native code, per implementation and use case.
//!
//! Usage: fig4 [--routes N] [--runs N] [--seed N] [--use-case rr|ov|all]
//!             [--dut fir|wren|all]

use xbgp_harness::fig3::{Dut, UseCase};
use xbgp_harness::fig4::{fig4_cell, paper_reference, Fig4Config};

fn main() {
    let mut cfg = Fig4Config::default();
    let mut duts = vec![Dut::Fir, Dut::Wren];
    let mut cases = vec![UseCase::RouteReflection, UseCase::OriginValidation];
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let need = |i: usize| -> &str {
            args.get(i + 1).map(String::as_str).unwrap_or_else(|| {
                eprintln!("missing value after {}", args[i]);
                std::process::exit(2);
            })
        };
        match args[i].as_str() {
            "--routes" => cfg.routes = need(i).parse().expect("--routes N"),
            "--runs" => cfg.runs = need(i).parse().expect("--runs N"),
            "--seed" => cfg.seed = need(i).parse().expect("--seed N"),
            "--use-case" => {
                cases = match need(i) {
                    "rr" => vec![UseCase::RouteReflection],
                    "ov" => vec![UseCase::OriginValidation],
                    "all" => cases,
                    other => {
                        eprintln!("unknown use case `{other}` (rr|ov|all)");
                        std::process::exit(2);
                    }
                }
            }
            "--dut" => {
                duts = match need(i) {
                    "fir" => vec![Dut::Fir],
                    "wren" => vec![Dut::Wren],
                    "all" => duts,
                    other => {
                        eprintln!("unknown dut `{other}` (fir|wren|all)");
                        std::process::exit(2);
                    }
                }
            }
            other => {
                eprintln!("unknown flag `{other}`");
                std::process::exit(2);
            }
        }
        i += 2;
    }

    println!(
        "# Fig. 4 — {} routes, {} paired runs per cell (seed {})",
        cfg.routes, cfg.runs, cfg.seed
    );
    for dut in &duts {
        for case in &cases {
            eprintln!("running {} / {} ...", dut.name(), case.name());
            let cell = fig4_cell(*dut, *case, &cfg);
            println!("\n{} / {}", dut.name(), case.name());
            println!("  impact: {}", xbgp_harness::stats::render(&cell.summary));
            println!(
                "  medians: native {:.2} ms, extension {:.2} ms",
                cell.median_native_ns / 1e6,
                cell.median_extension_ns / 1e6
            );
            println!("  {}", paper_reference(*dut, *case));
        }
    }
}
