//! Regenerate Fig. 4: relative performance impact of extension bytecode
//! versus native code, per implementation and use case.
//!
//! Usage: fig4 [--routes N] [--runs N] [--seed N] [--shards N]
//!             [--use-case rr|ov|all] [--dut fir|wren|all]
//!             [--metrics-out FILE] [--trace-out FILE] [--trace-sample N]
//!             [--profile] [--engine interp|compiled]
//!             [--churn-rounds N] [--churn-withdraw N‰] [--churn-reannounce N‰]
//!             [--churn-flap N‰] [--churn-flap-period N]
//!
//! `--metrics-out` enables DUT instrumentation and writes the merged
//! metrics snapshot of every cell's extension run as a JSON document.
//! `--trace-out` attaches a route-scoped flight recorder to every run and
//! writes the merged per-cell trace timelines as JSONL; `--trace-sample N`
//! traces 1 route in N (default 1 when `--trace-out` is given).
//! `--profile` enables the per-extension VM profiler (`xbgp_prof_*`
//! series in the metrics snapshot). `--engine` picks the bytecode
//! execution engine for the extension runs (default: the interpreter);
//! routing outcomes are engine-invariant, only the timing figures move.
//! `--churn-rounds N` switches every cell to steady-state churn mode
//! (impact on churn-phase DUT CPU instead of one-shot transfer time; see
//! `xbgp_harness::churn`); the other `--churn-*` flags tune the storm.
//!
//! Paper-scale runbook: `fig4 --routes 724000 --runs 15` reproduces the
//! figure at the RIS-snapshot scale the paper used (budget several
//! CPU-hours); add `--churn-rounds 20` for the churn-mode variant.

use routegen::churn::ChurnSpec;
use xbgp_harness::fig3::{Dut, UseCase};
use xbgp_harness::fig4::{fig4_cell, paper_reference, Fig4Config};
use xbgp_obs::{export, Snapshot};

fn churn_of(cfg: &mut Fig4Config) -> &mut ChurnSpec {
    let seed = cfg.seed;
    cfg.churn.get_or_insert_with(|| ChurnSpec::new(seed, 12))
}

fn per_mille(args: &[String], i: usize) -> u32 {
    let n = args.get(i + 1).and_then(|s| s.parse::<u64>().ok()).unwrap_or_else(|| {
        xbgp_obs::error!("{} needs a number in 0..=1000", args[i]);
        std::process::exit(2);
    });
    if n > 1000 {
        xbgp_obs::error!("{} is per-mille, must be <= 1000", args[i]);
        std::process::exit(2);
    }
    n as u32
}

fn main() {
    let mut cfg = Fig4Config::default();
    let mut duts = vec![Dut::Fir, Dut::Wren];
    let mut cases = vec![UseCase::RouteReflection, UseCase::OriginValidation];
    let mut metrics_out: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let need = |i: usize| -> &str {
            args.get(i + 1).map(String::as_str).unwrap_or_else(|| {
                xbgp_obs::error!("missing value after {}", args[i]);
                std::process::exit(2);
            })
        };
        let parse_num = |i: usize| -> u64 {
            need(i).parse().unwrap_or_else(|_| {
                xbgp_obs::error!("{} needs a number, got `{}`", args[i], need(i));
                std::process::exit(2);
            })
        };
        match args[i].as_str() {
            "--routes" => cfg.routes = parse_num(i) as usize,
            "--runs" => cfg.runs = parse_num(i) as usize,
            "--seed" => cfg.seed = parse_num(i),
            "--shards" => {
                cfg.shards = parse_num(i) as usize;
                if cfg.shards == 0 {
                    xbgp_obs::error!("--shards must be at least 1");
                    std::process::exit(2);
                }
            }
            "--metrics-out" => {
                cfg.metrics = true;
                metrics_out = Some(need(i).to_string());
            }
            "--trace-out" => {
                trace_out = Some(need(i).to_string());
            }
            "--trace-sample" => {
                cfg.trace_sample = parse_num(i);
                if cfg.trace_sample == 0 {
                    xbgp_obs::error!("--trace-sample must be at least 1");
                    std::process::exit(2);
                }
            }
            "--profile" => {
                cfg.profile = true;
                i += 1;
                continue;
            }
            "--engine" => {
                cfg.engine = need(i).parse().unwrap_or_else(|e| {
                    xbgp_obs::error!("{e}");
                    std::process::exit(2);
                });
            }
            "--churn-rounds" => {
                let n = parse_num(i) as usize;
                cfg.churn.get_or_insert_with(|| ChurnSpec::new(cfg.seed, n)).rounds = n;
            }
            "--churn-withdraw" => {
                churn_of(&mut cfg).withdraw_per_mille = per_mille(&args, i);
            }
            "--churn-reannounce" => {
                churn_of(&mut cfg).reannounce_per_mille = per_mille(&args, i);
            }
            "--churn-flap" => {
                churn_of(&mut cfg).flap_per_mille = per_mille(&args, i);
            }
            "--churn-flap-period" => {
                churn_of(&mut cfg).flap_period = parse_num(i) as usize;
            }
            "--use-case" => {
                cases = match need(i) {
                    "rr" => vec![UseCase::RouteReflection],
                    "ov" => vec![UseCase::OriginValidation],
                    "all" => cases,
                    other => {
                        xbgp_obs::error!("unknown use case `{other}` (rr|ov|all)");
                        std::process::exit(2);
                    }
                }
            }
            "--dut" => {
                duts = match need(i) {
                    "fir" => vec![Dut::Fir],
                    "wren" => vec![Dut::Wren],
                    "all" => duts,
                    other => {
                        xbgp_obs::error!("unknown dut `{other}` (fir|wren|all)");
                        std::process::exit(2);
                    }
                }
            }
            other => {
                xbgp_obs::error!("unknown flag `{other}`");
                std::process::exit(2);
            }
        }
        i += 2;
    }
    if trace_out.is_some() && cfg.trace_sample == 0 {
        cfg.trace_sample = 1;
    }

    println!(
        "# Fig. 4 — {} routes, {} paired runs per cell (seed {}, {} shard{})",
        cfg.routes,
        cfg.runs,
        cfg.seed,
        cfg.shards,
        if cfg.shards == 1 { "" } else { "s" }
    );
    let mut merged = Snapshot::default();
    let mut traces = Vec::new();
    for dut in &duts {
        for case in &cases {
            xbgp_obs::info!("running {} / {} ...", dut.name(), case.name());
            let cell = fig4_cell(*dut, *case, &cfg);
            println!("\n{} / {}", dut.name(), case.name());
            println!("  impact: {}", xbgp_harness::stats::render(&cell.summary));
            println!(
                "  medians: native {:.2} ms, extension {:.2} ms",
                cell.median_native_ns / 1e6,
                cell.median_extension_ns / 1e6
            );
            println!("  {}", paper_reference(*dut, *case));
            if let Some(snap) = cell.metrics {
                merged.merge(snap).expect("cells share the bucket layout");
            }
            traces.extend(cell.trace);
        }
    }
    if let Some(path) = metrics_out {
        let doc = export::to_json(&merged).to_string_pretty();
        if let Err(e) = std::fs::write(&path, doc) {
            xbgp_obs::error!("cannot write metrics to {path}: {e}");
            std::process::exit(2);
        }
        xbgp_obs::info!("metrics written to {path}");
    }
    if let Some(path) = trace_out {
        let dump = xbgp_obs::trace::TraceDump::merge(traces);
        let names = xbgp_harness::trace_point_names();
        if let Err(e) = std::fs::write(&path, dump.to_jsonl(&names)) {
            xbgp_obs::error!("cannot write trace to {path}: {e}");
            std::process::exit(2);
        }
        xbgp_obs::info!(
            "trace written to {path}: {} event(s), {} postmortem(s)",
            dump.events.len(),
            dump.postmortems.len()
        );
    }
}
