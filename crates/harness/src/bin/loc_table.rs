//! Regenerate the §2.1 integration-cost accounting: how much code each
//! host implementation needed to become xBGP-compliant, next to the
//! paper's numbers for BIRD and FRRouting.

/// Non-blank, non-comment lines of the non-test portion of a source file.
fn count_loc(src: &str) -> usize {
    let code = src.split("#[cfg(test)]").next().unwrap_or(src);
    code.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with("//") && !l.starts_with("//!"))
        .count()
}

fn main() {
    // The daemon-side xBGP glue (the analogue of the API shims the paper
    // added to each implementation). FIR's shim includes its host-order ↔
    // neutral converters (`neutral_payload`/`set_neutral`/`remove_neutral`
    // in attrs.rs) — the conversion code FRRouting needed and BIRD didn't.
    let fir_converters = {
        let attrs = include_str!("../../../fir/src/attrs.rs");
        let start = attrs.find("/// xBGP `get_attr`").expect("converter marker");
        let end = attrs.find("/// FRR-style attribute interning").expect("intern marker");
        count_loc(&attrs[start..end])
    };
    let fir_glue = count_loc(include_str!("../../../fir/src/xbgp_glue.rs")) + fir_converters;
    let wren_glue = count_loc(include_str!("../../../wren/src/xbgp_glue.rs"));
    // libxbgp itself: API + VMM.
    let libxbgp = count_loc(include_str!("../../../core/src/api.rs"))
        + count_loc(include_str!("../../../core/src/vmm.rs"))
        + count_loc(include_str!("../../../core/src/host.rs"))
        + count_loc(include_str!("../../../core/src/manifest.rs"));

    println!("# §2.1 — integration cost (non-blank, non-comment lines)");
    println!("#   component                     paper (C)   this repo (Rust)");
    println!("    FRRouting/FIR xBGP API shim        589     {fir_glue:>5}");
    println!("    BIRD/WREN xBGP API shim            400     {wren_glue:>5}");
    println!("    libxbgp (API + VMM)                432     {libxbgp:>5}");
    println!();
    println!("# Shape check: the FIR shim outweighs the WREN shim because FIR");
    println!("# must convert between its host-order structs and the neutral");
    println!("# network-byte-order form, while WREN's ea_list already stores");
    println!("# the neutral form — the paper's explanation for 589 vs 400.");
    assert!(fir_glue > wren_glue, "representation gap must show up in the glue sizes");
}
