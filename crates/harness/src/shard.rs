//! Prefix-sharded multi-worker route processing.
//!
//! BGP best-route selection is independent per prefix, so a table load
//! splits cleanly into shards by prefix hash: each shard worker owns a
//! complete, self-contained copy of the pipeline — simulator, feeder,
//! a `FirDaemon`/`WrenDaemon` instance and its own `Vmm` with the
//! extension bytecode loaded. Nothing `Rc`-based ever crosses a thread:
//! workers receive only `Send` inputs (wire-format UPDATE frame batches,
//! the shared ROA slice, the manifest with `Arc`'d bytecode) over mpsc
//! channels and return only `Send` outputs (per-shard counters, metric
//! [`Snapshot`]s, wire-encoded Loc-RIB dumps). This keeps the
//! single-threaded daemon internals untouched — per-shard ownership
//! instead of shared-state locking.
//!
//! `N = 1` never enters this module ([`crate::fig3::run`] dispatches here
//! only for `shards > 1`), so a single-shard run is the reference
//! sequential path, byte for byte.

use crate::fig3::{self, Fig3Outcome, Fig3Spec, UseCase};
use crate::stats::{summarize_weighted, Summary};
use routegen::{Route, TableSpec};
use std::sync::mpsc;
use xbgp_obs::trace::TraceDump;
use xbgp_obs::Snapshot;
use xbgp_wire::Ipv4Prefix;

/// UPDATE frames per mpsc message when feeding a worker. Batching
/// amortizes channel overhead: one send moves ~64 × 4 KiB of wire data.
const FRAME_BATCH: usize = 64;

/// Which shard owns `prefix`, out of `shards`.
///
/// FNV-1a over the prefix address and length: cheap, platform-stable,
/// and a pure function of the prefix — ownership does not depend on
/// arrival order, which is what makes shard placement deterministic.
pub fn shard_of(prefix: &Ipv4Prefix, shards: usize) -> usize {
    debug_assert!(shards > 0);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in prefix.addr().to_be_bytes().into_iter().chain([prefix.len()]) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % shards as u64) as usize
}

/// Split a workload into per-shard route lists by prefix hash, preserving
/// the original order within each shard (attribute-sharing runs stay
/// intact, so UPDATE packing keeps working per shard).
pub fn split_routes(routes: &[Route], shards: usize) -> Vec<Vec<Route>> {
    let mut out: Vec<Vec<Route>> =
        (0..shards).map(|_| Vec::with_capacity(routes.len() / shards + 1)).collect();
    for r in routes {
        out[shard_of(&r.prefix, shards)].push(r.clone());
    }
    out
}

/// How shard workers execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// One scoped OS thread per non-empty shard — the runtime
    /// configuration.
    Threads,
    /// Shards run back-to-back on the calling thread. Identical code and
    /// results (each shard's simulation is self-contained), but each
    /// shard's CPU accounting runs uncontended — benches use this to
    /// measure per-shard virtual time on hosts with fewer hardware
    /// threads than shards, where preemption would inflate the
    /// wall-clock-sampled CPU charges.
    Inline,
}

/// One worker's result plus enough context to weight aggregates.
#[derive(Debug, Clone)]
pub struct ShardOutcome {
    pub shard: usize,
    /// Routes this shard actually processed (shards rarely divide
    /// evenly; aggregate statistics weight by this).
    pub routes: usize,
    pub outcome: Fig3Outcome,
}

/// A sharded Fig. 3 run: the merged outcome plus per-shard detail.
#[derive(Debug, Clone)]
pub struct ShardedRun {
    pub merged: Fig3Outcome,
    /// Per-shard outcomes, sorted by shard index; empty shards omitted.
    pub shards: Vec<ShardOutcome>,
}

impl ShardedRun {
    /// Per-route DUT CPU cost summary across shards, weighted by the
    /// routes each shard actually processed (an uneven last shard
    /// contributes proportionally, not as a full peer).
    pub fn per_route_cpu_summary(&self) -> Summary {
        let values: Vec<f64> = self
            .shards
            .iter()
            .map(|s| s.outcome.dut_cpu_ns as f64 / s.routes.max(1) as f64)
            .collect();
        let weights: Vec<u64> = self.shards.iter().map(|s| s.routes as u64).collect();
        summarize_weighted(&values, &weights).expect("one weight per shard by construction")
    }
}

/// Run a Fig. 3 workload split across `spec.shards` workers.
///
/// The parent generates the full table and the full ROA set once (both
/// are functions of the complete table and the seed — see
/// [`fig3::make_roas`]), splits the routes by prefix hash, pre-encodes
/// each shard's UPDATE frames, and streams them to the workers in
/// batches. Each worker builds its entire pipeline locally and reports
/// one [`ShardOutcome`] back over the result channel.
pub fn run_fig3_sharded(spec: &Fig3Spec, mode: ExecMode) -> ShardedRun {
    let shards = spec.shards.max(1);
    let table = routegen::generate(&TableSpec::new(spec.routes, spec.seed));
    let roas =
        (spec.use_case == UseCase::OriginValidation).then(|| fig3::make_roas(&table, spec.seed));
    let parts = split_routes(&table, shards);
    drop(table);

    let roas = roas.as_deref();
    let mut results: Vec<ShardOutcome> = match mode {
        ExecMode::Inline => parts
            .iter()
            .enumerate()
            .filter(|(_, routes)| !routes.is_empty())
            .map(|(k, routes)| {
                let frames = fig3::encode_frames(spec, routes);
                let outcome = fig3::run_frames(spec, frames, routes.len(), roas, k as u32);
                ShardOutcome { shard: k, routes: routes.len(), outcome }
            })
            .collect(),
        ExecMode::Threads => {
            let (out_tx, out_rx) = mpsc::channel::<ShardOutcome>();
            let mut live = 0usize;
            std::thread::scope(|scope| {
                let mut feeds = Vec::new();
                for (k, routes) in parts.iter().enumerate() {
                    if routes.is_empty() {
                        continue;
                    }
                    live += 1;
                    let (in_tx, in_rx) = mpsc::channel::<Vec<Vec<u8>>>();
                    let out_tx = out_tx.clone();
                    let spec = *spec;
                    let expected = routes.len();
                    scope.spawn(move || {
                        // Drain the batched wire-format UPDATE feed, then
                        // run the complete shard-local pipeline. All
                        // non-`Send` state (daemon, VMM, interning
                        // tables) is born and dies on this thread.
                        let mut frames = Vec::new();
                        for batch in in_rx {
                            frames.extend(batch);
                        }
                        let outcome = fig3::run_frames(&spec, frames, expected, roas, k as u32);
                        let _ = out_tx.send(ShardOutcome { shard: k, routes: expected, outcome });
                    });
                    feeds.push((in_tx, routes));
                }
                drop(out_tx);
                // Feed every worker its shard's frames in batches.
                for (in_tx, routes) in feeds {
                    for batch in fig3::encode_frames(spec, routes).chunks(FRAME_BATCH) {
                        in_tx.send(batch.to_vec()).expect("worker alive until feed closes");
                    }
                    // Dropping in_tx closes the feed; the worker starts.
                }
                out_rx.iter().take(live).collect()
            })
        }
    };
    results.sort_by_key(|r| r.shard);
    ShardedRun { merged: merge_outcomes(spec, &results), shards: results }
}

/// Merge per-shard outcomes into one figure-level outcome:
///
/// * `elapsed_ns` — the **max** across shards. Shards run concurrently,
///   each on its own (virtual) core, so the table load completes when
///   the slowest shard does.
/// * `prefixes_delivered` / `dut_cpu_ns` — sums.
/// * `metrics` — snapshots merged with [`Snapshot::merge`], which sums
///   matching counters, gauges and histogram buckets, so totals match
///   what one daemon over the whole workload would report.
/// * `loc_rib` — concatenated and re-sorted: shard ownership partitions
///   the prefix space, so the union is the whole table.
/// * `trace` — per-shard flight-recorder dumps merged into one timeline
///   ([`TraceDump::merge`] orders by virtual timestamp, then shard).
fn merge_outcomes(spec: &Fig3Spec, results: &[ShardOutcome]) -> Fig3Outcome {
    let mut merged = Fig3Outcome {
        elapsed_ns: 0,
        prefixes_delivered: 0,
        dut_cpu_ns: 0,
        metrics: spec.metrics.then(Snapshot::new),
        loc_rib: spec.rib_dump.then(Vec::new),
        trace: None,
    };
    for r in results {
        merged.elapsed_ns = merged.elapsed_ns.max(r.outcome.elapsed_ns);
        merged.prefixes_delivered += r.outcome.prefixes_delivered;
        merged.dut_cpu_ns += r.outcome.dut_cpu_ns;
        if let (Some(acc), Some(snap)) = (merged.metrics.as_mut(), r.outcome.metrics.as_ref()) {
            acc.merge(snap.clone()).expect("shards share the bucket layout");
        }
        if let (Some(acc), Some(rib)) = (merged.loc_rib.as_mut(), r.outcome.loc_rib.as_ref()) {
            acc.extend(rib.iter().cloned());
        }
    }
    if let Some(rib) = merged.loc_rib.as_mut() {
        rib.sort();
    }
    let dumps: Vec<TraceDump> = results.iter().filter_map(|r| r.outcome.trace.clone()).collect();
    if !dumps.is_empty() {
        merged.trace = Some(TraceDump::merge(dumps));
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fig3::Dut;

    #[test]
    fn shard_of_is_stable_and_in_range() {
        let p: Ipv4Prefix = "203.0.113.0/24".parse().unwrap();
        for shards in 1..=8 {
            let k = shard_of(&p, shards);
            assert!(k < shards);
            assert_eq!(k, shard_of(&p, shards), "pure function of the prefix");
        }
        assert_eq!(shard_of(&p, 1), 0);
    }

    #[test]
    fn split_preserves_every_route_exactly_once() {
        let table = routegen::generate(&TableSpec::new(1000, 3));
        let parts = split_routes(&table, 4);
        assert_eq!(parts.len(), 4);
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), table.len());
        for (k, part) in parts.iter().enumerate() {
            for r in part {
                assert_eq!(shard_of(&r.prefix, 4), k);
            }
        }
        // A hash split of 1000 routes should not be pathologically skewed.
        assert!(parts.iter().all(|p| (150..=350).contains(&p.len())));
    }

    #[test]
    fn threads_and_inline_modes_agree() {
        let spec = Fig3Spec {
            dut: Dut::Fir,
            use_case: UseCase::OriginValidation,
            extension: true,
            routes: 300,
            seed: 11,
            metrics: false,
            shards: 3,
            rib_dump: true,
            trace_sample: 0,
            profile: false,
            engine: xbgp_core::Engine::Interp,
        };
        let threaded = run_fig3_sharded(&spec, ExecMode::Threads);
        let inline = run_fig3_sharded(&spec, ExecMode::Inline);
        assert_eq!(threaded.merged.prefixes_delivered, 300);
        assert_eq!(inline.merged.prefixes_delivered, 300);
        assert_eq!(threaded.merged.loc_rib, inline.merged.loc_rib);
        let (t, i): (Vec<_>, Vec<_>) = (
            threaded.shards.iter().map(|s| (s.shard, s.routes)).collect(),
            inline.shards.iter().map(|s| (s.shard, s.routes)).collect(),
        );
        assert_eq!(t, i);
    }

    #[test]
    fn per_route_summary_weights_by_shard_size() {
        let mk = |shard: usize, routes: usize, cpu: u64| ShardOutcome {
            shard,
            routes,
            outcome: Fig3Outcome {
                elapsed_ns: 0,
                prefixes_delivered: routes,
                dut_cpu_ns: cpu,
                metrics: None,
                loc_rib: None,
                trace: None,
            },
        };
        // Three big shards at 10 ns/route, one tiny straggler at 100.
        let run = ShardedRun {
            merged: mk(0, 0, 0).outcome,
            shards: vec![mk(0, 300, 3000), mk(1, 300, 3000), mk(2, 300, 3000), mk(3, 10, 1000)],
        };
        let s = run.per_route_cpu_summary();
        // Unweighted mean would be (10+10+10+100)/4 = 32.5; weighting by
        // routes keeps the straggler's influence proportional.
        let expect = (3000.0 * 3.0 + 1000.0) / 910.0;
        assert!((s.mean - expect).abs() < 1e-9, "mean {} vs {}", s.mean, expect);
        assert_eq!(s.median, 10.0);
        assert_eq!(s.max, 100.0);
    }

    #[test]
    fn sharded_traces_merge_in_timeline_order() {
        let spec = Fig3Spec {
            dut: Dut::Fir,
            use_case: UseCase::OriginValidation,
            extension: true,
            routes: 200,
            seed: 5,
            metrics: false,
            shards: 3,
            rib_dump: false,
            trace_sample: 1,
            profile: false,
            engine: xbgp_core::Engine::Interp,
        };
        let run = run_fig3_sharded(&spec, ExecMode::Inline);
        let dump = run.merged.trace.as_ref().expect("tracing on");
        assert!(!dump.events.is_empty());
        // Timeline order: virtual timestamps never go backwards.
        assert!(dump.events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
        // Events from more than one shard namespace survived the merge,
        // still attributable through their trace-id shard bits.
        let shards: std::collections::BTreeSet<u32> =
            dump.events.iter().map(|e| e.shard()).collect();
        assert!(shards.len() > 1, "expected multi-shard trace, got {shards:?}");
        // Trace ids from different shards never collide.
        for s in &run.shards {
            let d = s.outcome.trace.as_ref().expect("per-shard dump kept");
            assert!(d.events.iter().all(|e| e.shard() == s.shard as u32), "shard {}", s.shard);
        }
    }
}
