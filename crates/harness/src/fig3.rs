//! The Fig. 3 testbed: upstream feeder → device under test → downstream
//! sink, with CPU accounting enabled so the DUT's real compute cost
//! becomes the measured quantity.

use crate::dut::{build, DaemonSpec, DutNode};
use crate::feeder::Feeder;
use crate::sink::Sink;
use netsim::{Sim, SimConfig};
use routegen::{to_updates, Route, TableSpec};
use rpki::Roa;
use xbgp_core::{Engine, Manifest};
use xbgp_obs::trace::{TraceConfig, TraceDump};
use xbgp_progs::{origin_validation, route_reflect};
use xbgp_wire::{Ipv4Prefix, Message};

pub use xbgp_driver::Dut;

/// Which §3 use case runs on the DUT.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UseCase {
    /// §3.2: iBGP chain, the DUT reflects the table.
    RouteReflection,
    /// §3.4: eBGP chain, the DUT validates every prefix origin.
    OriginValidation,
}

impl UseCase {
    pub fn name(self) -> &'static str {
        match self {
            UseCase::RouteReflection => "Route Reflectors",
            UseCase::OriginValidation => "Origin Validation",
        }
    }

    /// Machine-friendly name, used as a metric label value.
    pub fn slug(self) -> &'static str {
        match self {
            UseCase::RouteReflection => "route_reflection",
            UseCase::OriginValidation => "origin_validation",
        }
    }
}

/// One experiment run description.
#[derive(Debug, Clone, Copy)]
pub struct Fig3Spec {
    pub dut: Dut,
    pub use_case: UseCase,
    /// Run the feature as extension bytecode instead of native code.
    pub extension: bool,
    /// Table size (the paper used 724k; scale to taste).
    pub routes: usize,
    /// Workload seed.
    pub seed: u64,
    /// Enable the DUT's timing instrumentation and return its metrics
    /// snapshot in the outcome.
    pub metrics: bool,
    /// Prefix-hash shards to split the workload across (see
    /// [`crate::shard`]). `0` and `1` both mean the sequential path.
    pub shards: usize,
    /// Collect the DUT's final Loc-RIB contents in the outcome (the
    /// determinism regression test compares these across shard counts).
    pub rib_dump: bool,
    /// Route-scoped tracing: sample 1 route in this many through the
    /// DUT's flight recorder (0 = tracing off). The dump lands in
    /// [`Fig3Outcome::trace`]; sharded runs merge per-shard dumps in
    /// timeline order.
    pub trace_sample: u64,
    /// Enable the DUT's VM execution profiler (`xbgp_prof_*` series in
    /// the metrics snapshot).
    pub profile: bool,
    /// Bytecode execution engine on the DUT (interpreter or the
    /// block-compiled engine). Loc-RIBs are bit-for-bit identical across
    /// engines; only the elapsed/CPU figures move.
    pub engine: Engine,
}

/// Measured outcome of one run.
#[derive(Debug, Clone)]
pub struct Fig3Outcome {
    /// Paper metric: virtual ns between the upstream's first announcement
    /// and the last prefix landing at the downstream.
    pub elapsed_ns: u64,
    /// Distinct prefixes that reached the sink (sanity check).
    pub prefixes_delivered: usize,
    /// Measured CPU ns charged to the DUT.
    pub dut_cpu_ns: u64,
    /// DUT metrics snapshot (when `Fig3Spec::metrics` is set). A sharded
    /// run merges the per-shard snapshots, summing matching counters.
    pub metrics: Option<xbgp_obs::Snapshot>,
    /// Final Loc-RIB contents, sorted by prefix (when
    /// `Fig3Spec::rib_dump` is set).
    pub loc_rib: Option<Vec<(Ipv4Prefix, Vec<u8>)>>,
    /// Flight-recorder dump (when `Fig3Spec::trace_sample` is set). A
    /// sharded run merges per-shard dumps into one timeline.
    pub trace: Option<TraceDump>,
}

/// ROA validity mix of §3.4 ("75% of the injected prefixes as valid").
pub const VALID_FRACTION: f64 = 0.75;

/// Build the full-table ROA set for a workload. Must always be derived
/// from the *complete* table: `routegen::make_roas` draws one RNG value
/// per route, so the set only reproduces when generated over the same
/// route list — and trie validation consults covering ROAs, so every
/// shard needs the whole set regardless of which prefixes it owns.
pub(crate) fn make_roas(routes: &[Route], seed: u64) -> Vec<Roa> {
    routegen::make_roas(routes, VALID_FRACTION, seed)
        .into_iter()
        .map(|e| Roa::new(e.prefix, e.max_len, e.asn))
        .collect()
}

/// Run one Fig. 3 experiment.
pub fn run(spec: &Fig3Spec) -> Fig3Outcome {
    if spec.shards > 1 {
        return crate::shard::run_fig3_sharded(spec, crate::shard::ExecMode::Threads).merged;
    }
    let table = routegen::generate(&TableSpec::new(spec.routes, spec.seed));
    let roas = (spec.use_case == UseCase::OriginValidation).then(|| make_roas(&table, spec.seed));
    let frames = encode_frames(spec, &table);
    run_frames(spec, frames, table.len(), roas.as_deref(), 0)
}

/// Pre-encode a route list into the wire-format UPDATE frames the feeder
/// blasts: packed by shared attribute set, chunked under the message
/// limit. These frames are plain bytes — `Send` — which is what crosses
/// the thread boundary in a sharded run.
pub(crate) fn encode_frames(spec: &Fig3Spec, routes: &[Route]) -> Vec<Vec<u8>> {
    let local_pref = (spec.use_case == UseCase::RouteReflection).then_some(100);
    to_updates(routes, 1, local_pref)
        .into_iter()
        .map(|u| Message::Update(u).encode(4).expect("update encodes"))
        .collect()
}

/// Run one feeder → DUT → sink chain over pre-encoded UPDATE frames
/// carrying `expected` distinct prefixes. `roas` is the full-table ROA
/// set (origin validation only); `shard` namespaces the flight
/// recorder's trace ids so merged multi-worker timelines stay
/// attributable. This is the complete shard-local workload: every input
/// is `Send`, and all `Rc`-based daemon state is constructed inside this
/// call and never leaves it.
pub(crate) fn run_frames(
    spec: &Fig3Spec,
    frames: Vec<Vec<u8>>,
    expected: usize,
    roas: Option<&[Roa]>,
    shard: u32,
) -> Fig3Outcome {
    let ibgp = spec.use_case == UseCase::RouteReflection;
    let trace_cfg = (spec.trace_sample > 0).then_some(TraceConfig {
        sample_every: spec.trace_sample,
        capacity: 0,
        shard,
    });

    // Addresses/ASNs: feeder=1, DUT=2, sink=3.
    let (feeder_asn, dut_asn, sink_asn) = if ibgp {
        (65000, 65000, 65000)
    } else {
        (65001, 65002, 65003)
    };

    let mut sim = Sim::new(SimConfig { cpu_accounting: true });
    let f = sim.add_node(Box::new(Feeder::new(feeder_asn, 1, frames)));
    let d = sim.add_node(Box::new(Placeholder));
    let s = sim.add_node(Box::new(Sink::new(sink_asn, 3)));
    let l_up = sim.connect(f, d, 100_000); // 0.1 ms links
    let l_down = sim.connect(d, s, 100_000);

    let (native_roas, ext_roas, manifest): (Option<Vec<Roa>>, Option<Vec<Roa>>, Option<Manifest>) =
        match (spec.use_case, spec.extension) {
            (UseCase::RouteReflection, false) => (None, None, None),
            (UseCase::RouteReflection, true) => (None, None, Some(route_reflect::manifest())),
            (UseCase::OriginValidation, false) => {
                (Some(roas.expect("OV workloads carry ROAs").to_vec()), None, None)
            }
            (UseCase::OriginValidation, true) => (
                None,
                Some(roas.expect("OV workloads carry ROAs").to_vec()),
                Some(origin_validation::manifest()),
            ),
        };

    let mut dspec = DaemonSpec::new(dut_asn, 2);
    dspec = if ibgp {
        dspec.rr_client(l_up, 1, feeder_asn).rr_client(l_down, 3, sink_asn)
    } else {
        dspec.neighbor(l_up, 1, feeder_asn).neighbor(l_down, 3, sink_asn)
    };
    dspec.native_rr = ibgp && !spec.extension;
    dspec.native_rov = native_roas;
    dspec.xbgp_roas = ext_roas;
    dspec.xbgp = manifest;
    dspec.metrics = spec.metrics;
    dspec.trace = trace_cfg;
    dspec.profile = spec.profile;
    dspec.engine = spec.engine;
    sim.replace_node(d, Box::new(build(spec.dut, dspec)));

    // Run in bounded virtual-time chunks until the sink has the whole
    // table. (Keepalive timers re-arm forever, so the event queue never
    // drains and run-until-idle would not terminate.)
    const SEC: u64 = 1_000_000_000;
    let mut deadline = 0u64;
    loop {
        deadline += 120 * SEC;
        sim.run_until(deadline);
        let seen = {
            let sink: &Sink = sim.node_ref(s);
            sink.prefixes_seen()
        };
        if seen >= expected {
            break;
        }
        assert!(
            deadline < 1_000_000 * SEC,
            "experiment did not converge: {seen}/{expected} prefixes"
        );
    }

    let first_sent = {
        let feeder: &Feeder = sim.node_ref(f);
        feeder.first_sent.expect("session established, table sent")
    };
    let (last_rx, delivered) = {
        let sink: &Sink = sim.node_ref(s);
        (sink.last_prefix_rx.expect("table reached the sink"), sink.prefixes_seen())
    };
    let metrics = spec.metrics.then(|| sim.node_ref::<DutNode>(d).0.metrics_snapshot());
    let loc_rib = spec.rib_dump.then(|| sim.node_ref::<DutNode>(d).0.loc_rib_dump());
    let trace = trace_cfg.and_then(|_| sim.node_mut::<DutNode>(d).0.take_trace());
    Fig3Outcome {
        elapsed_ns: last_rx.saturating_sub(first_sent),
        prefixes_delivered: delivered,
        dut_cpu_ns: sim.cpu_time(d),
        metrics,
        loc_rib,
        trace,
    }
}

struct Placeholder;
impl netsim::Node for Placeholder {
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_eight_configurations_deliver_the_full_table() {
        for dut in [Dut::Fir, Dut::Wren] {
            for use_case in [UseCase::RouteReflection, UseCase::OriginValidation] {
                for extension in [false, true] {
                    let out = run(&Fig3Spec {
                        dut,
                        use_case,
                        extension,
                        routes: 400,
                        seed: 7,
                        metrics: extension,
                        shards: 1,
                        rib_dump: false,
                        trace_sample: 0,
                        profile: false,
                        engine: Engine::Interp,
                    });
                    assert_eq!(
                        out.prefixes_delivered,
                        400,
                        "{} / {} / ext={extension}",
                        dut.name(),
                        use_case.name()
                    );
                    assert!(out.elapsed_ns > 0);
                    assert!(out.dut_cpu_ns > 0, "CPU accounting active");
                    if extension {
                        let snap = out.metrics.as_ref().expect("metrics requested");
                        let ran = snap.metrics.iter().any(|m| {
                            m.name == "xbgp_vmm_runs_total"
                                && matches!(m.value,
                                    xbgp_obs::MetricValue::Counter(n) if n > 0)
                        });
                        assert!(ran, "extension run produced VMM run counters");
                    }
                }
            }
        }
    }
}
