//! Fig. 4 — relative performance impact of extension bytecode versus
//! native code.
//!
//! For each (implementation × use case) cell the harness runs the Fig. 3
//! experiment `runs` times with distinct workload seeds, pairing a native
//! and an extension run per seed, and reports the boxplot of per-seed
//! relative impacts — the quantity on the paper's y-axis.

use crate::fig3::{self, Dut, Fig3Spec, UseCase};
use crate::stats::{relative_impact_pct, summarize, Summary};
use xbgp_core::Engine;
use xbgp_obs::trace::TraceDump;
use xbgp_obs::Snapshot;

/// Experiment parameters.
#[derive(Debug, Clone, Copy)]
pub struct Fig4Config {
    /// Table size per run (paper: 724k).
    pub routes: usize,
    /// Paired runs per cell (paper: 15).
    pub runs: usize,
    /// Base seed; run `i` uses `seed + i`.
    pub seed: u64,
    /// Collect DUT metrics snapshots (enables timing instrumentation in
    /// both variants, so the pairing stays symmetric).
    pub metrics: bool,
    /// Prefix-hash shards per run (both variants of a pair use the same
    /// count, keeping the pairing symmetric). `1` is the sequential path.
    pub shards: usize,
    /// Route-scoped tracing: sample 1 route in this many (0 = off). Both
    /// variants of a pair trace, keeping the pairing symmetric; the
    /// extension run's dump lands in [`Fig4Cell::trace`].
    pub trace_sample: u64,
    /// Enable the DUT's VM execution profiler in both variants.
    pub profile: bool,
    /// Bytecode execution engine for the extension runs (the native side
    /// of each pair runs no bytecode, so it is unaffected).
    pub engine: Engine,
    /// Churn mode: when set, each pair measures steady-state churn (see
    /// [`crate::churn`]) instead of one-shot table transfer. The impact
    /// becomes relative churn-phase DUT CPU (native vs extension), the
    /// medians churn-phase CPU ns, and every run self-checks against the
    /// full-recompute oracle. The spec's `seed` is replaced by the
    /// per-run seed so pairs stay seed-matched.
    pub churn: Option<routegen::churn::ChurnSpec>,
}

impl Default for Fig4Config {
    fn default() -> Self {
        Fig4Config {
            routes: 50_000,
            runs: 15,
            seed: 1,
            metrics: false,
            shards: 1,
            trace_sample: 0,
            profile: false,
            engine: Engine::default(),
            churn: None,
        }
    }
}

/// One cell of Fig. 4.
#[derive(Debug, Clone)]
pub struct Fig4Cell {
    pub dut: Dut,
    pub use_case: UseCase,
    /// Per-seed relative impacts (%).
    pub impacts_pct: Vec<f64>,
    /// Boxplot of `impacts_pct`.
    pub summary: Summary,
    /// Median absolute times, for context.
    pub median_native_ns: f64,
    pub median_extension_ns: f64,
    /// DUT metrics from the cell's last extension run, labeled with the
    /// use case (when `Fig4Config::metrics` is set).
    pub metrics: Option<Snapshot>,
    /// Flight-recorder dump from the cell's last extension run (when
    /// `Fig4Config::trace_sample` is set).
    pub trace: Option<TraceDump>,
}

/// The full figure.
#[derive(Debug, Clone)]
pub struct Fig4Report {
    pub config: Fig4Config,
    pub cells: Vec<Fig4Cell>,
}

/// Run one cell.
pub fn fig4_cell(dut: Dut, use_case: UseCase, cfg: &Fig4Config) -> Fig4Cell {
    let mut impacts = Vec::with_capacity(cfg.runs);
    let mut natives = Vec::with_capacity(cfg.runs);
    let mut extensions = Vec::with_capacity(cfg.runs);
    let mut metrics = None;
    let mut trace = None;
    for i in 0..cfg.runs {
        let seed = cfg.seed + i as u64;
        if let Some(churn) = cfg.churn {
            // Churn mode: pair native and extension steady-state runs on
            // the same seed and compare churn-phase DUT CPU.
            let mk = |extension: bool| crate::churn::ChurnRunSpec {
                dut,
                use_case,
                extension,
                routes: cfg.routes,
                seed,
                shards: cfg.shards,
                engine: cfg.engine,
                full_recompute: false,
                check_oracle: true,
                churn: routegen::churn::ChurnSpec { seed, ..churn },
                round_interval_ns: 200_000_000,
            };
            let native = crate::churn::run(&mk(false));
            let ext = crate::churn::run(&mk(true));
            assert_eq!(native.oracle_mismatches, 0, "native churn run diverged from oracle");
            assert_eq!(ext.oracle_mismatches, 0, "extension churn run diverged from oracle");
            assert_eq!(native.updates_applied, ext.updates_applied, "same stream");
            natives.push(native.churn_cpu_ns as f64);
            extensions.push(ext.churn_cpu_ns as f64);
            impacts.push(relative_impact_pct(native.churn_cpu_ns as f64, ext.churn_cpu_ns as f64));
            if cfg.metrics {
                metrics = Some(ext.metrics.with_labels(&[("use_case", use_case.slug())]));
            }
            continue;
        }
        let native = fig3::run(&Fig3Spec {
            dut,
            use_case,
            extension: false,
            routes: cfg.routes,
            seed,
            metrics: cfg.metrics,
            shards: cfg.shards,
            rib_dump: false,
            trace_sample: cfg.trace_sample,
            profile: cfg.profile,
            engine: cfg.engine,
        });
        let ext = fig3::run(&Fig3Spec {
            dut,
            use_case,
            extension: true,
            routes: cfg.routes,
            seed,
            metrics: cfg.metrics,
            shards: cfg.shards,
            rib_dump: false,
            trace_sample: cfg.trace_sample,
            profile: cfg.profile,
            engine: cfg.engine,
        });
        assert_eq!(
            native.prefixes_delivered, ext.prefixes_delivered,
            "both variants must deliver the same table"
        );
        natives.push(native.elapsed_ns as f64);
        extensions.push(ext.elapsed_ns as f64);
        impacts.push(relative_impact_pct(native.elapsed_ns as f64, ext.elapsed_ns as f64));
        if let Some(snap) = ext.metrics {
            metrics = Some(snap.with_labels(&[("use_case", use_case.slug())]));
        }
        if let Some(dump) = ext.trace {
            trace = Some(dump);
        }
    }
    // `cfg.runs` is at least 1 for any runnable figure, so the samples
    // are never empty here; a zero-run config is a caller bug worth the
    // panic message.
    let summary = summarize(&impacts).expect("at least one run per cell");
    Fig4Cell {
        dut,
        use_case,
        impacts_pct: impacts,
        summary,
        median_native_ns: summarize(&natives).expect("at least one run per cell").median,
        median_extension_ns: summarize(&extensions).expect("at least one run per cell").median,
        metrics,
        trace,
    }
}

/// Run the whole figure: both DUTs × both use cases.
pub fn fig4_run(cfg: &Fig4Config) -> Fig4Report {
    let mut cells = Vec::new();
    for dut in [Dut::Fir, Dut::Wren] {
        for use_case in [UseCase::RouteReflection, UseCase::OriginValidation] {
            cells.push(fig4_cell(dut, use_case, cfg));
        }
    }
    Fig4Report { config: *cfg, cells }
}

/// Merge every cell's metrics snapshot into one document (cells are
/// distinguished by their `daemon` and `use_case` labels).
pub fn merged_metrics(report: &Fig4Report) -> Snapshot {
    let mut merged = Snapshot::default();
    for cell in &report.cells {
        if let Some(snap) = &cell.metrics {
            merged.merge(snap.clone()).expect("cells share the bucket layout");
        }
    }
    merged
}

/// The paper's qualitative reference values for side-by-side comparison
/// (medians eyeballed from Fig. 4's boxplots).
pub fn paper_reference(dut: Dut, use_case: UseCase) -> &'static str {
    match (dut, use_case) {
        (Dut::Fir, UseCase::RouteReflection) => "paper xFRR/RR: ≈ +15% (under 20%)",
        (Dut::Wren, UseCase::RouteReflection) => "paper xBIRD/RR: ≈ +18% (under 20%)",
        (Dut::Fir, UseCase::OriginValidation) => "paper xFRR/OV: ≈ -10% (extension FASTER)",
        (Dut::Wren, UseCase::OriginValidation) => "paper xBIRD/OV: ≈ 0% (parity)",
    }
}

/// Render the report as the text analogue of Fig. 4.
pub fn render(report: &Fig4Report) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# Fig. 4 — relative performance impact of extension vs native code\n\
         # routes per run: {}, paired runs per cell: {}\n",
        report.config.routes, report.config.runs
    ));
    if let Some(c) = &report.config.churn {
        out.push_str(&format!(
            "# churn mode: {} rounds (withdraw {}‰, re-announce {}‰, flap period {}); \
             impact is on churn-phase DUT CPU\n",
            c.rounds, c.withdraw_per_mille, c.reannounce_per_mille, c.flap_period
        ));
    }
    for cell in &report.cells {
        out.push_str(&format!(
            "\n{} / {}\n  impact: {}\n  medians: native {:.2} ms, extension {:.2} ms\n  {}\n",
            cell.dut.name(),
            cell.use_case.name(),
            crate::stats::render(&cell.summary),
            cell.median_native_ns / 1e6,
            cell.median_extension_ns / 1e6,
            paper_reference(cell.dut, cell.use_case),
        ));
    }
    out
}
