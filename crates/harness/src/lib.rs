//! # xbgp-harness — experiment driver
//!
//! Regenerates every quantitative artifact of the paper:
//!
//! * [`fig1`] — the CDF of IETF standardization delays (Fig. 1),
//! * [`fig3`] — the measurement testbed (Fig. 3): a feeder, a device under
//!   test, and a sink on a simulated chain, with CPU accounting turned on
//!   so extension-vs-native compute differences surface as virtual-time
//!   deltas,
//! * [`fig4`] — the relative-performance experiment (Fig. 4) over both
//!   daemons and both use cases,
//! * [`stats`] — run statistics (boxplot summaries) shared by the
//!   binaries and benches.
//!
//! Binaries: `fig1`, `fig4`, `fig5_scenarios`, `loc_table`.

pub mod churn;
pub mod dut;
pub mod feeder;
pub mod fig1;
pub mod fig3;
pub mod fig4;
pub mod scenario;
pub mod shard;
pub mod sink;
pub mod stats;

pub use churn::{ChurnOutcome, ChurnRunSpec};
pub use dut::{build, Daemon, DaemonSpec, DutNode};
pub use feeder::Feeder;
pub use fig3::{Dut, Fig3Outcome, Fig3Spec, UseCase};
pub use fig4::{fig4_run, Fig4Config, Fig4Report};
pub use sink::Sink;

/// Insertion-point names for trace export, indexed by `TraceEvent::point`
/// — what [`xbgp_obs::trace::TraceDump::to_jsonl`] and `to_chrome` expect
/// as their name table.
pub fn trace_point_names() -> Vec<&'static str> {
    xbgp_core::api::InsertionPoint::ALL.iter().map(|p| p.name()).collect()
}
