//! The downstream router of the Fig. 3 testbed: receives the table from
//! the device under test and timestamps its progress.

use netsim::{LinkId, Node, NodeCtx};
use std::collections::HashSet;
use xbgp_wire::{Ipv4Prefix, Message, MsgReader, MsgType, OpenMsg, UpdateMsg};

/// Downstream sink node.
pub struct Sink {
    asn: u32,
    router_id: u32,
    link: Option<LinkId>,
    reader: MsgReader,
    seen: HashSet<Ipv4Prefix>,
    pub updates_rx: u64,
    /// Virtual time of the first received prefix.
    pub first_prefix_rx: Option<u64>,
    /// Virtual time of the most recent received prefix.
    pub last_prefix_rx: Option<u64>,
    /// Count of withdrawals received.
    pub withdrawals_rx: u64,
    /// Raw attribute sections seen, for tests inspecting wire contents.
    pub keep_attr_sections: bool,
    pub attr_sections: Vec<Vec<u8>>,
}

impl Sink {
    pub fn new(asn: u32, router_id: u32) -> Sink {
        Sink {
            asn,
            router_id,
            link: None,
            reader: MsgReader::new(),
            seen: HashSet::new(),
            updates_rx: 0,
            first_prefix_rx: None,
            last_prefix_rx: None,
            withdrawals_rx: 0,
            keep_attr_sections: false,
            attr_sections: Vec::new(),
        }
    }

    /// Number of distinct prefixes received so far.
    pub fn prefixes_seen(&self) -> usize {
        self.seen.len()
    }
}

impl Node for Sink {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        let link = ctx.links()[0];
        self.link = Some(link);
        let open = Message::Open(OpenMsg::standard(self.asn, 180, self.router_id));
        ctx.send(link, &open.encode(4).expect("OPEN encodes"));
        ctx.set_timer(30_000_000_000, 1);
    }

    fn on_data(&mut self, ctx: &mut NodeCtx<'_>, _link: LinkId, data: &[u8]) {
        self.reader.push(data);
        while let Ok(Some(frame)) = self.reader.next_frame() {
            match xbgp_wire::msg::deframe(&frame) {
                Ok((MsgType::Open, _)) => {
                    let link = self.link.expect("started");
                    ctx.send(link, &Message::Keepalive.encode(4).expect("encodes"));
                }
                Ok((MsgType::Update, body)) => {
                    self.updates_rx += 1;
                    if self.keep_attr_sections {
                        if let Ok(attrs) = UpdateMsg::attr_section(body) {
                            self.attr_sections.push(attrs.to_vec());
                        }
                    }
                    if let Ok(upd) = UpdateMsg::decode_body(body, 4) {
                        self.withdrawals_rx += upd.withdrawn.len() as u64;
                        if !upd.nlri.is_empty() {
                            if self.first_prefix_rx.is_none() {
                                self.first_prefix_rx = Some(ctx.now());
                            }
                            self.last_prefix_rx = Some(ctx.now());
                            for p in upd.nlri {
                                self.seen.insert(p);
                            }
                        }
                    }
                }
                _ => {}
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _token: u64) {
        if let Some(link) = self.link {
            ctx.send(link, &Message::Keepalive.encode(4).expect("encodes"));
            ctx.set_timer(30_000_000_000, 1);
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}
