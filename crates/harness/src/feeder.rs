//! The upstream router of the Fig. 3 testbed.
//!
//! Speaks just enough BGP to establish a session, then blasts a
//! pre-encoded routing table at the device under test — the role the
//! RIS-fed FRRouting upstream plays in the paper. Pre-encoding keeps the
//! feeder's own CPU cost out of the measurement loop.

use netsim::{LinkId, Node, NodeCtx};
use xbgp_wire::{Message, MsgReader, MsgType, OpenMsg};

/// Upstream feeder node.
pub struct Feeder {
    asn: u32,
    router_id: u32,
    link: Option<LinkId>,
    reader: MsgReader,
    /// Pre-encoded UPDATE frames to send once the session is up.
    frames: Vec<Vec<u8>>,
    established: bool,
    /// Virtual time the first UPDATE was handed to the link.
    pub first_sent: Option<u64>,
    pub frames_sent: u64,
    /// Pre-encoded churn rounds replayed on a timer after the blast.
    rounds: Vec<Vec<Vec<u8>>>,
    next_round: usize,
    /// Virtual-time gap between churn rounds.
    round_interval_ns: u64,
    /// Delay between the blast and the first churn round, leaving the DUT
    /// time to converge on the initial table.
    round_start_delay_ns: u64,
    /// Virtual time the most recent churn round was handed to the link —
    /// the convergence-time baseline for that round.
    pub last_round_sent: Option<u64>,
    pub rounds_sent: usize,
    /// `false` until the harness calls [`Feeder::arm_rounds`] (manual
    /// mode) or the blast goes out (auto mode).
    armed: bool,
    auto_start: bool,
}

/// Timer token for the churn-round clock (keepalives use token 1).
const ROUND_TIMER: u64 = 2;

impl Feeder {
    /// `frames` are complete BGP frames (header + body).
    pub fn new(asn: u32, router_id: u32, frames: Vec<Vec<u8>>) -> Feeder {
        Feeder {
            asn,
            router_id,
            link: None,
            reader: MsgReader::new(),
            frames,
            established: false,
            first_sent: None,
            frames_sent: 0,
            rounds: Vec::new(),
            next_round: 0,
            round_interval_ns: 0,
            round_start_delay_ns: 0,
            last_round_sent: None,
            rounds_sent: 0,
            armed: false,
            auto_start: false,
        }
    }

    /// Schedule pre-encoded churn `rounds` after the blast: the first
    /// round fires `start_delay_ns` after the table is sent, subsequent
    /// rounds every `interval_ns`.
    pub fn with_churn(
        mut self,
        rounds: Vec<Vec<Vec<u8>>>,
        start_delay_ns: u64,
        interval_ns: u64,
    ) -> Feeder {
        self.rounds = rounds;
        self.round_start_delay_ns = start_delay_ns;
        self.round_interval_ns = interval_ns;
        self.auto_start = true;
        self
    }

    /// Load pre-encoded churn `rounds` into a running feeder and arm them
    /// in one step: the first round goes out on the next keepalive tick
    /// (≤30 s of virtual time later), subsequent rounds every
    /// `interval_ns`. Harnesses call this at storm time, *after* sampling
    /// their quiescent baselines (CPU, update counters) — so the baseline
    /// window is delimited by construction, not by a separate arming
    /// call that is easy to forget.
    pub fn load_rounds(&mut self, rounds: Vec<Vec<Vec<u8>>>, interval_ns: u64) {
        self.rounds = rounds;
        self.round_interval_ns = interval_ns;
        self.next_round = 0;
        self.rounds_sent = 0;
        self.armed = true;
    }

    /// Load churn `rounds` that wait for an explicit [`Feeder::arm_rounds`]
    /// call instead of auto-starting after the blast.
    #[deprecated(
        since = "0.1.0",
        note = "call `load_rounds()` at storm time instead of the two-step \
                with_churn_manual + arm_rounds dance"
    )]
    pub fn with_churn_manual(mut self, rounds: Vec<Vec<Vec<u8>>>, interval_ns: u64) -> Feeder {
        self.rounds = rounds;
        self.round_interval_ns = interval_ns;
        self.auto_start = false;
        self
    }

    /// Arm manually-loaded churn rounds: the first round goes out on the
    /// next keepalive tick (≤30 s of virtual time later).
    #[deprecated(since = "0.1.0", note = "load_rounds() arms in the same call")]
    pub fn arm_rounds(&mut self) {
        self.armed = true;
    }

    fn blast(&mut self, ctx: &mut NodeCtx<'_>) {
        if self.first_sent.is_none() {
            self.first_sent = Some(ctx.now());
        }
        let link = self.link.expect("started");
        for f in &self.frames {
            ctx.send(link, f);
        }
        self.frames_sent += self.frames.len() as u64;
        self.frames.clear();
        if !self.rounds.is_empty() && self.auto_start {
            self.armed = true;
            ctx.set_timer(self.round_start_delay_ns, ROUND_TIMER);
        }
    }

    fn send_round(&mut self, ctx: &mut NodeCtx<'_>) {
        let link = self.link.expect("started");
        let round = &self.rounds[self.next_round];
        for f in round {
            ctx.send(link, f);
        }
        self.frames_sent += round.len() as u64;
        self.last_round_sent = Some(ctx.now());
        self.next_round += 1;
        self.rounds_sent += 1;
        if self.next_round < self.rounds.len() {
            ctx.set_timer(self.round_interval_ns, ROUND_TIMER);
        }
    }
}

impl Node for Feeder {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        let link = ctx.links()[0];
        self.link = Some(link);
        let open = Message::Open(OpenMsg::standard(self.asn, 180, self.router_id));
        ctx.send(link, &open.encode(4).expect("OPEN encodes"));
        // Periodic keepalives so the peer's hold timer stays quiet.
        ctx.set_timer(30_000_000_000, 1);
    }

    fn on_data(&mut self, ctx: &mut NodeCtx<'_>, _link: LinkId, data: &[u8]) {
        self.reader.push(data);
        while let Ok(Some(frame)) = self.reader.next_frame() {
            match xbgp_wire::msg::deframe(&frame) {
                Ok((MsgType::Open, _)) => {
                    let link = self.link.expect("started");
                    ctx.send(link, &Message::Keepalive.encode(4).expect("encodes"));
                }
                Ok((MsgType::Keepalive, _)) if !self.established => {
                    self.established = true;
                    self.blast(ctx);
                }
                _ => {} // updates reflected back, notifications: ignore
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, token: u64) {
        if token == ROUND_TIMER {
            if self.next_round < self.rounds.len() {
                self.send_round(ctx);
            }
            return;
        }
        if let Some(link) = self.link {
            ctx.send(link, &Message::Keepalive.encode(4).expect("encodes"));
            ctx.set_timer(30_000_000_000, 1);
            // Manually-armed churn kicks off from the keepalive clock.
            if self.armed && self.established && self.rounds_sent == 0 && !self.rounds.is_empty() {
                self.send_round(ctx);
            }
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::Sink;
    use netsim::{Sim, SimConfig};
    use routegen::{to_updates, TableSpec};

    #[test]
    fn feeder_and_sink_handshake_directly() {
        // Feeder wired straight to a sink: the sink must receive the whole
        // table (sanity for both measurement endpoints).
        let routes = routegen::generate(&TableSpec::new(500, 1));
        let frames: Vec<Vec<u8>> = to_updates(&routes, 0x0a00_0001, Some(100))
            .into_iter()
            .map(|u| Message::Update(u).encode(4).unwrap())
            .collect();
        let mut sim = Sim::new(SimConfig::default());
        let f = sim.add_node(Box::new(Feeder::new(65001, 1, frames)));
        let s = sim.add_node(Box::new(Sink::new(65001, 2)));
        sim.connect(f, s, 1000);
        sim.run_until(120_000_000_000); // bounded: keepalives re-arm forever

        let last_rx = {
            let sink: &Sink = sim.node_ref(s);
            assert_eq!(sink.prefixes_seen(), 500);
            sink.last_prefix_rx.expect("prefixes received")
        };
        let feeder: &Feeder = sim.node_ref(f);
        assert!(feeder.first_sent.expect("table sent") <= last_rx);
    }

    #[test]
    fn churn_rounds_replay_on_the_round_timer() {
        let routes = routegen::generate(&TableSpec::new(300, 2));
        let frames: Vec<Vec<u8>> = to_updates(&routes, 0x0a00_0001, None)
            .into_iter()
            .map(|u| Message::Update(u).encode(4).unwrap())
            .collect();
        let spec = routegen::churn::ChurnSpec::new(4, 5);
        let rounds = routegen::churn::churn_rounds(&routes, &spec);
        let n_rounds = rounds.len();
        let total = routegen::churn::total_updates(&rounds);
        let round_frames: Vec<Vec<Vec<u8>>> = rounds
            .iter()
            .map(|r| {
                r.to_updates(0x0a00_0001, None)
                    .into_iter()
                    .map(|u| Message::Update(u).encode(4).unwrap())
                    .collect()
            })
            .collect();
        let mut sim = Sim::new(SimConfig::default());
        let f = sim.add_node(Box::new(Feeder::new(65001, 1, frames).with_churn(
            round_frames,
            1_000_000_000,
            500_000_000,
        )));
        let s = sim.add_node(Box::new(Sink::new(65001, 2)));
        sim.connect(f, s, 1000);
        sim.run_until(60_000_000_000);

        let feeder: &Feeder = sim.node_ref(f);
        assert_eq!(feeder.rounds_sent, n_rounds, "every round replayed");
        let last = feeder.last_round_sent.expect("rounds sent");
        assert!(last >= feeder.first_sent.unwrap() + 1_000_000_000);
        let sink: &Sink = sim.node_ref(s);
        // The sink saw the churn traffic: all withdrawals arrived, and the
        // final state covers the whole table again (restore round).
        let wd: u64 = rounds.iter().map(|r| r.withdrawals.len() as u64).sum();
        assert_eq!(sink.withdrawals_rx, wd);
        assert!(total > 0);
        assert_eq!(sink.prefixes_seen(), 300);
    }
}
