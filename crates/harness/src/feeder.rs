//! The upstream router of the Fig. 3 testbed.
//!
//! Speaks just enough BGP to establish a session, then blasts a
//! pre-encoded routing table at the device under test — the role the
//! RIS-fed FRRouting upstream plays in the paper. Pre-encoding keeps the
//! feeder's own CPU cost out of the measurement loop.

use netsim::{LinkId, Node, NodeCtx};
use xbgp_wire::{Message, MsgReader, MsgType, OpenMsg};

/// Upstream feeder node.
pub struct Feeder {
    asn: u32,
    router_id: u32,
    link: Option<LinkId>,
    reader: MsgReader,
    /// Pre-encoded UPDATE frames to send once the session is up.
    frames: Vec<Vec<u8>>,
    established: bool,
    /// Virtual time the first UPDATE was handed to the link.
    pub first_sent: Option<u64>,
    pub frames_sent: u64,
}

impl Feeder {
    /// `frames` are complete BGP frames (header + body).
    pub fn new(asn: u32, router_id: u32, frames: Vec<Vec<u8>>) -> Feeder {
        Feeder {
            asn,
            router_id,
            link: None,
            reader: MsgReader::new(),
            frames,
            established: false,
            first_sent: None,
            frames_sent: 0,
        }
    }

    fn blast(&mut self, ctx: &mut NodeCtx<'_>) {
        if self.first_sent.is_none() {
            self.first_sent = Some(ctx.now());
        }
        let link = self.link.expect("started");
        for f in &self.frames {
            ctx.send(link, f);
        }
        self.frames_sent += self.frames.len() as u64;
        self.frames.clear();
    }
}

impl Node for Feeder {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        let link = ctx.links()[0];
        self.link = Some(link);
        let open = Message::Open(OpenMsg::standard(self.asn, 180, self.router_id));
        ctx.send(link, &open.encode(4).expect("OPEN encodes"));
        // Periodic keepalives so the peer's hold timer stays quiet.
        ctx.set_timer(30_000_000_000, 1);
    }

    fn on_data(&mut self, ctx: &mut NodeCtx<'_>, _link: LinkId, data: &[u8]) {
        self.reader.push(data);
        while let Ok(Some(frame)) = self.reader.next_frame() {
            match xbgp_wire::msg::deframe(&frame) {
                Ok((MsgType::Open, _)) => {
                    let link = self.link.expect("started");
                    ctx.send(link, &Message::Keepalive.encode(4).expect("encodes"));
                }
                Ok((MsgType::Keepalive, _)) if !self.established => {
                    self.established = true;
                    self.blast(ctx);
                }
                _ => {} // updates reflected back, notifications: ignore
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _token: u64) {
        if let Some(link) = self.link {
            ctx.send(link, &Message::Keepalive.encode(4).expect("encodes"));
            ctx.set_timer(30_000_000_000, 1);
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::Sink;
    use netsim::{Sim, SimConfig};
    use routegen::{to_updates, TableSpec};

    #[test]
    fn feeder_and_sink_handshake_directly() {
        // Feeder wired straight to a sink: the sink must receive the whole
        // table (sanity for both measurement endpoints).
        let routes = routegen::generate(&TableSpec::new(500, 1));
        let frames: Vec<Vec<u8>> = to_updates(&routes, 0x0a00_0001, Some(100))
            .into_iter()
            .map(|u| Message::Update(u).encode(4).unwrap())
            .collect();
        let mut sim = Sim::new(SimConfig::default());
        let f = sim.add_node(Box::new(Feeder::new(65001, 1, frames)));
        let s = sim.add_node(Box::new(Sink::new(65001, 2)));
        sim.connect(f, s, 1000);
        sim.run_until(120_000_000_000); // bounded: keepalives re-arm forever

        let last_rx = {
            let sink: &Sink = sim.node_ref(s);
            assert_eq!(sink.prefixes_seen(), 500);
            sink.last_prefix_rx.expect("prefixes received")
        };
        let feeder: &Feeder = sim.node_ref(f);
        assert!(feeder.first_sent.expect("table sent") <= last_rx);
    }
}
