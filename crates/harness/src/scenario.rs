//! Declarative simulation scenarios.
//!
//! `xbgp-sim` (the companion binary) runs a JSON-described network: a set
//! of FIR/WREN routers, links, xBGP extension presets, and a timeline of
//! failures and assertions. This is the operator-facing face of the
//! reproduction — the equivalent of wiring up the paper's VMs, in one
//! file:
//!
//! ```json
//! {
//!   "name": "listing1-demo",
//!   "routers": [
//!     { "name": "london", "implementation": "fir", "asn": 65000,
//!       "router_id": "10.0.0.1",
//!       "originate": ["203.0.113.0/24"] },
//!     { "name": "berlin", "implementation": "fir", "asn": 65000,
//!       "router_id": "10.0.0.3",
//!       "extensions": { "preset": "igp_filter" } },
//!     { "name": "peer", "implementation": "wren", "asn": 65009,
//!       "router_id": "10.0.0.9" }
//!   ],
//!   "links": [
//!     { "a": "london", "b": "berlin" },
//!     { "a": "berlin", "b": "peer" }
//!   ],
//!   "igp": { "members": ["london", "berlin"],
//!            "links": [ { "a": "london", "b": "berlin", "metric": 10 } ] },
//!   "events": [
//!     { "at_secs": 5,  "expect_route": { "router": "peer", "prefix": "203.0.113.0/24", "present": true } },
//!     { "at_secs": 10, "fail_igp_link": { "a": "london", "b": "berlin" } },
//!     { "at_secs": 11, "flap_link": { "a": "london", "b": "berlin" } },
//!     { "at_secs": 60, "expect_route": { "router": "peer", "prefix": "203.0.113.0/24", "present": false } }
//!   ]
//! }
//! ```
//!
//! Documents are parsed with [`xbgp_obs::json`]; unknown fields are
//! rejected so typos in scenario files fail loudly instead of being
//! silently ignored.

use crate::dut::{build, DaemonSpec, Dut, DutNode};
use netsim::{LinkId, NodeId, Sim, SimConfig};
use std::collections::HashMap;
use xbgp_core::Manifest;
use xbgp_obs::json::Value;
use xbgp_obs::trace::{TraceConfig, TraceDump};
use xbgp_wire::prefix::parse_addr;
use xbgp_wire::Ipv4Prefix;

const SEC: u64 = 1_000_000_000;

/// Top-level scenario document.
#[derive(Debug, Clone)]
pub struct Scenario {
    pub name: String,
    pub routers: Vec<RouterSpec>,
    pub links: Vec<LinkSpec>,
    pub igp: Option<IgpSpec>,
    pub events: Vec<Event>,
    /// Optional churn workload: a synthetic upstream feeder blasts a
    /// generated table at one router, then replays a seeded churn stream
    /// (withdraw storms, flaps, ROA sweeps, path hunting) in timed rounds.
    pub churn: Option<ChurnSection>,
    /// Virtual time to run after the last event (seconds). Default 10.
    pub settle_secs: u64,
    /// Fault-injection rate in `[0, 1]`: when positive, every router gets
    /// the `fault_inject` probe appended to its manifest, trapping
    /// mid-chain (after staging host mutations) on roughly this fraction
    /// of inbound-filter invocations. Exercises the transactional
    /// execution contract under a real workload; default 0 (off).
    pub fault_rate: f64,
}

#[derive(Debug, Clone)]
pub struct RouterSpec {
    pub name: String,
    /// `"fir"` or `"wren"`.
    pub implementation: String,
    pub asn: u32,
    /// Dotted-quad BGP identifier / address.
    pub router_id: String,
    pub originate: Vec<String>,
    /// Neighbors (by router name) treated as route-reflection clients.
    pub rr_clients: Vec<String>,
    /// Enable native RFC 4456 reflection.
    pub native_rr: bool,
    /// Inline validator-CSV ROA rows for native origin validation.
    pub native_roas_csv: Option<String>,
    /// xBGP extensions to load.
    pub extensions: Option<ExtensionSpecJson>,
    /// `get_xtra` configuration (values hex-encoded).
    pub xtra_hex: HashMap<String, String>,
}

/// Either a bundled preset or a full inline manifest.
#[derive(Debug, Clone)]
pub struct ExtensionSpecJson {
    /// One of: `igp_filter`, `route_reflect`, `origin_validation`,
    /// `geoloc`, `valley_free`.
    pub preset: Option<String>,
    /// Parameters for the preset (see `build_manifest`).
    pub params: HashMap<String, Value>,
    /// Full manifest document (as produced by `Manifest::to_json`),
    /// overriding `preset`.
    pub manifest: Option<Value>,
    /// Validator-CSV ROA rows backing the `rpki_check_origin` helper.
    pub roas_csv: Option<String>,
}

#[derive(Debug, Clone)]
pub struct LinkSpec {
    pub a: String,
    pub b: String,
    /// One-way latency in microseconds (default 100).
    pub latency_us: u64,
}

#[derive(Debug, Clone)]
pub struct IgpSpec {
    pub members: Vec<String>,
    pub links: Vec<IgpLinkSpec>,
}

#[derive(Debug, Clone)]
pub struct IgpLinkSpec {
    pub a: String,
    pub b: String,
    pub metric: u32,
}

/// One timeline entry: exactly one action, at a virtual time.
#[derive(Debug, Clone)]
pub struct Event {
    pub at_secs: u64,
    pub fail_link: Option<LinkRef>,
    pub restore_link: Option<LinkRef>,
    /// Fail and immediately restore (forces re-export with fresh state).
    pub flap_link: Option<LinkRef>,
    pub fail_igp_link: Option<LinkRef>,
    pub expect_route: Option<ExpectRoute>,
}

#[derive(Debug, Clone)]
pub struct LinkRef {
    pub a: String,
    pub b: String,
}

#[derive(Debug, Clone)]
pub struct ExpectRoute {
    pub router: String,
    pub prefix: String,
    pub present: bool,
}

/// Churn workload description (see [`routegen::churn`] for the stream
/// semantics). A synthetic feeder peers eBGP (AS 64999, 10.255.255.254)
/// with the named router, blasts `routes` generated prefixes, and — once
/// `start_secs` have passed after the blast — replays the churn rounds
/// every `interval_ms`. All rates are integer per-mille.
#[derive(Debug, Clone)]
pub struct ChurnSection {
    /// Router (by name) the feeder peers with.
    pub feed: String,
    /// Initial table size.
    pub routes: usize,
    /// Stream seed (table and churn derive from it).
    pub seed: u64,
    /// Storm rounds (a final restore round is appended automatically).
    pub rounds: usize,
    pub withdraw_per_mille: u32,
    pub reannounce_per_mille: u32,
    pub flap_per_mille: u32,
    pub flap_period: usize,
    pub roa_sweep_per_mille: u32,
    pub path_hunt_depth: usize,
    /// Virtual-time gap between rounds (default 200).
    pub interval_ms: u64,
    /// Delay between blast and the first round (default 5).
    pub start_secs: u64,
    /// After the last round, compare every router's incremental Loc-RIB
    /// against its full-recompute oracle and report a check per router
    /// (default true).
    pub check_oracle: bool,
    /// Internal `(replica, shards)` filter set by [`run_sharded`]: the
    /// replica feeds only the prefixes it owns, from a stream always
    /// derived from the full table. Not part of the JSON format.
    pub shard: Option<(usize, usize)>,
}

impl ChurnSection {
    /// A churn section with the documented defaults (the values a JSON
    /// section gets when it names only `feed` and `routes`).
    pub fn new(feed: &str, routes: usize) -> ChurnSection {
        ChurnSection {
            feed: feed.to_string(),
            routes,
            seed: 1,
            rounds: 8,
            withdraw_per_mille: 100,
            reannounce_per_mille: 500,
            flap_per_mille: 50,
            flap_period: 4,
            roa_sweep_per_mille: 20,
            path_hunt_depth: 2,
            interval_ms: 200,
            start_secs: 5,
            check_oracle: true,
            shard: None,
        }
    }

    fn spec(&self) -> routegen::churn::ChurnSpec {
        routegen::churn::ChurnSpec {
            seed: self.seed,
            rounds: self.rounds,
            withdraw_per_mille: self.withdraw_per_mille,
            reannounce_per_mille: self.reannounce_per_mille,
            flap_per_mille: self.flap_per_mille,
            flap_period: self.flap_period,
            roa_sweep_per_mille: self.roa_sweep_per_mille,
            path_hunt_depth: self.path_hunt_depth,
        }
    }
}

// ---------------------------------------------------------------------------
// JSON → spec decoding. Each `from_value` rejects unknown fields, like
// serde's `deny_unknown_fields`, so scenario typos surface immediately.

fn check_fields(v: &Value, ctx: &str, allowed: &[&str]) -> Result<(), String> {
    if v.as_object().is_none() {
        return Err(format!("{ctx}: expected an object"));
    }
    for key in v.keys() {
        if !allowed.contains(&key) {
            return Err(format!("{ctx}: unknown field `{key}`"));
        }
    }
    Ok(())
}

fn str_field(v: &Value, ctx: &str, key: &str) -> Result<String, String> {
    v.get(key)
        .ok_or_else(|| format!("{ctx}: missing `{key}`"))?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("{ctx}: `{key}` must be a string"))
}

fn u64_field(v: &Value, ctx: &str, key: &str) -> Result<u64, String> {
    v.get(key)
        .ok_or_else(|| format!("{ctx}: missing `{key}`"))?
        .as_u64()
        .ok_or_else(|| format!("{ctx}: `{key}` must be a non-negative integer"))
}

fn u64_field_or(v: &Value, ctx: &str, key: &str, default: u64) -> Result<u64, String> {
    match v.get(key) {
        None => Ok(default),
        Some(n) => n
            .as_u64()
            .ok_or_else(|| format!("{ctx}: `{key}` must be a non-negative integer")),
    }
}

fn f64_field_or(v: &Value, ctx: &str, key: &str, default: f64) -> Result<f64, String> {
    match v.get(key) {
        None => Ok(default),
        Some(n) => n.as_f64().ok_or_else(|| format!("{ctx}: `{key}` must be a number")),
    }
}

fn bool_field_or(v: &Value, ctx: &str, key: &str, default: bool) -> Result<bool, String> {
    match v.get(key) {
        None => Ok(default),
        Some(b) => b.as_bool().ok_or_else(|| format!("{ctx}: `{key}` must be a boolean")),
    }
}

fn opt_str_field(v: &Value, ctx: &str, key: &str) -> Result<Option<String>, String> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(s) => s
            .as_str()
            .map(|s| Some(s.to_string()))
            .ok_or_else(|| format!("{ctx}: `{key}` must be a string")),
    }
}

fn str_list_field(v: &Value, ctx: &str, key: &str) -> Result<Vec<String>, String> {
    match v.get(key) {
        None => Ok(Vec::new()),
        Some(arr) => arr
            .as_array()
            .ok_or_else(|| format!("{ctx}: `{key}` must be an array of strings"))?
            .iter()
            .map(|s| {
                s.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| format!("{ctx}: `{key}` entries must be strings"))
            })
            .collect(),
    }
}

fn list_field<'a, T>(
    v: &'a Value,
    ctx: &str,
    key: &str,
    required: bool,
    decode: impl Fn(&'a Value, String) -> Result<T, String>,
) -> Result<Vec<T>, String> {
    let arr = match v.get(key) {
        None if required => return Err(format!("{ctx}: missing `{key}`")),
        None => return Ok(Vec::new()),
        Some(arr) => arr.as_array().ok_or_else(|| format!("{ctx}: `{key}` must be an array"))?,
    };
    arr.iter()
        .enumerate()
        .map(|(i, item)| decode(item, format!("{ctx}: {key}[{i}]")))
        .collect()
}

impl Scenario {
    pub fn from_value(v: &Value) -> Result<Scenario, String> {
        let ctx = "scenario";
        check_fields(
            v,
            ctx,
            &[
                "name",
                "routers",
                "links",
                "igp",
                "events",
                "churn",
                "settle_secs",
                "fault_rate",
            ],
        )?;
        let fault_rate = f64_field_or(v, ctx, "fault_rate", 0.0)?;
        if !(0.0..=1.0).contains(&fault_rate) {
            return Err(format!("{ctx}: `fault_rate` must be in [0, 1], got {fault_rate}"));
        }
        Ok(Scenario {
            name: str_field(v, ctx, "name")?,
            routers: list_field(v, ctx, "routers", true, |r, c| RouterSpec::from_value(r, &c))?,
            links: list_field(v, ctx, "links", true, |l, c| LinkSpec::from_value(l, &c))?,
            igp: match v.get("igp") {
                None | Some(Value::Null) => None,
                Some(spec) => Some(IgpSpec::from_value(spec)?),
            },
            events: list_field(v, ctx, "events", false, |e, c| Event::from_value(e, &c))?,
            churn: match v.get("churn") {
                None | Some(Value::Null) => None,
                Some(spec) => Some(ChurnSection::from_value(spec)?),
            },
            settle_secs: u64_field_or(v, ctx, "settle_secs", 10)?,
            fault_rate,
        })
    }
}

impl RouterSpec {
    fn from_value(v: &Value, ctx: &str) -> Result<RouterSpec, String> {
        check_fields(
            v,
            ctx,
            &[
                "name",
                "implementation",
                "asn",
                "router_id",
                "originate",
                "rr_clients",
                "native_rr",
                "native_roas_csv",
                "extensions",
                "xtra_hex",
            ],
        )?;
        let mut xtra_hex = HashMap::new();
        if let Some(obj) = v.get("xtra_hex") {
            let members =
                obj.as_object().ok_or_else(|| format!("{ctx}: `xtra_hex` must be an object"))?;
            for (key, hex) in members {
                let hex = hex
                    .as_str()
                    .ok_or_else(|| format!("{ctx}: xtra_hex `{key}` must be a hex string"))?;
                xtra_hex.insert(key.clone(), hex.to_string());
            }
        }
        Ok(RouterSpec {
            name: str_field(v, ctx, "name")?,
            implementation: str_field(v, ctx, "implementation")?,
            asn: u64_field(v, ctx, "asn")?
                .try_into()
                .map_err(|_| format!("{ctx}: `asn` out of range"))?,
            router_id: str_field(v, ctx, "router_id")?,
            originate: str_list_field(v, ctx, "originate")?,
            rr_clients: str_list_field(v, ctx, "rr_clients")?,
            native_rr: bool_field_or(v, ctx, "native_rr", false)?,
            native_roas_csv: opt_str_field(v, ctx, "native_roas_csv")?,
            extensions: match v.get("extensions") {
                None | Some(Value::Null) => None,
                Some(spec) => Some(ExtensionSpecJson::from_value(spec, ctx)?),
            },
            xtra_hex,
        })
    }
}

impl ExtensionSpecJson {
    fn from_value(v: &Value, ctx: &str) -> Result<ExtensionSpecJson, String> {
        let ctx = format!("{ctx}: extensions");
        check_fields(v, &ctx, &["preset", "params", "manifest", "roas_csv"])?;
        let mut params = HashMap::new();
        if let Some(obj) = v.get("params") {
            let members =
                obj.as_object().ok_or_else(|| format!("{ctx}: `params` must be an object"))?;
            for (key, value) in members {
                params.insert(key.clone(), value.clone());
            }
        }
        Ok(ExtensionSpecJson {
            preset: opt_str_field(v, &ctx, "preset")?,
            params,
            manifest: v.get("manifest").filter(|m| !matches!(m, Value::Null)).cloned(),
            roas_csv: opt_str_field(v, &ctx, "roas_csv")?,
        })
    }
}

impl LinkSpec {
    fn from_value(v: &Value, ctx: &str) -> Result<LinkSpec, String> {
        check_fields(v, ctx, &["a", "b", "latency_us"])?;
        Ok(LinkSpec {
            a: str_field(v, ctx, "a")?,
            b: str_field(v, ctx, "b")?,
            latency_us: u64_field_or(v, ctx, "latency_us", 100)?,
        })
    }
}

impl IgpSpec {
    fn from_value(v: &Value) -> Result<IgpSpec, String> {
        let ctx = "scenario: igp";
        check_fields(v, ctx, &["members", "links"])?;
        Ok(IgpSpec {
            members: str_list_field(v, ctx, "members")?,
            links: list_field(v, ctx, "links", true, |l, c| IgpLinkSpec::from_value(l, &c))?,
        })
    }
}

impl IgpLinkSpec {
    fn from_value(v: &Value, ctx: &str) -> Result<IgpLinkSpec, String> {
        check_fields(v, ctx, &["a", "b", "metric"])?;
        Ok(IgpLinkSpec {
            a: str_field(v, ctx, "a")?,
            b: str_field(v, ctx, "b")?,
            metric: u64_field(v, ctx, "metric")?
                .try_into()
                .map_err(|_| format!("{ctx}: `metric` out of range"))?,
        })
    }
}

impl Event {
    fn from_value(v: &Value, ctx: &str) -> Result<Event, String> {
        check_fields(
            v,
            ctx,
            &[
                "at_secs",
                "fail_link",
                "restore_link",
                "flap_link",
                "fail_igp_link",
                "expect_route",
            ],
        )?;
        let link = |key: &str| -> Result<Option<LinkRef>, String> {
            match v.get(key) {
                None | Some(Value::Null) => Ok(None),
                Some(r) => Ok(Some(LinkRef::from_value(r, &format!("{ctx}: {key}"))?)),
            }
        };
        Ok(Event {
            at_secs: u64_field(v, ctx, "at_secs")?,
            fail_link: link("fail_link")?,
            restore_link: link("restore_link")?,
            flap_link: link("flap_link")?,
            fail_igp_link: link("fail_igp_link")?,
            expect_route: match v.get("expect_route") {
                None | Some(Value::Null) => None,
                Some(e) => Some(ExpectRoute::from_value(e, &format!("{ctx}: expect_route"))?),
            },
        })
    }
}

impl ChurnSection {
    fn from_value(v: &Value) -> Result<ChurnSection, String> {
        let ctx = "scenario: churn";
        check_fields(
            v,
            ctx,
            &[
                "feed",
                "routes",
                "seed",
                "rounds",
                "withdraw_per_mille",
                "reannounce_per_mille",
                "flap_per_mille",
                "flap_period",
                "roa_sweep_per_mille",
                "path_hunt_depth",
                "interval_ms",
                "start_secs",
                "check_oracle",
            ],
        )?;
        let per_mille = |key: &str, default: u64| -> Result<u32, String> {
            let n = u64_field_or(v, ctx, key, default)?;
            if n > 1000 {
                return Err(format!("{ctx}: `{key}` is per-mille, must be ≤ 1000 (got {n})"));
            }
            Ok(n as u32)
        };
        Ok(ChurnSection {
            feed: str_field(v, ctx, "feed")?,
            routes: u64_field(v, ctx, "routes")? as usize,
            seed: u64_field_or(v, ctx, "seed", 1)?,
            rounds: u64_field_or(v, ctx, "rounds", 8)? as usize,
            withdraw_per_mille: per_mille("withdraw_per_mille", 100)?,
            reannounce_per_mille: per_mille("reannounce_per_mille", 500)?,
            flap_per_mille: per_mille("flap_per_mille", 50)?,
            flap_period: u64_field_or(v, ctx, "flap_period", 4)? as usize,
            roa_sweep_per_mille: per_mille("roa_sweep_per_mille", 20)?,
            path_hunt_depth: u64_field_or(v, ctx, "path_hunt_depth", 2)? as usize,
            interval_ms: u64_field_or(v, ctx, "interval_ms", 200)?,
            start_secs: u64_field_or(v, ctx, "start_secs", 5)?,
            check_oracle: bool_field_or(v, ctx, "check_oracle", true)?,
            shard: None,
        })
    }
}

impl LinkRef {
    fn from_value(v: &Value, ctx: &str) -> Result<LinkRef, String> {
        check_fields(v, ctx, &["a", "b"])?;
        Ok(LinkRef { a: str_field(v, ctx, "a")?, b: str_field(v, ctx, "b")? })
    }
}

impl ExpectRoute {
    fn from_value(v: &Value, ctx: &str) -> Result<ExpectRoute, String> {
        check_fields(v, ctx, &["router", "prefix", "present"])?;
        Ok(ExpectRoute {
            router: str_field(v, ctx, "router")?,
            prefix: str_field(v, ctx, "prefix")?,
            present: v
                .get("present")
                .and_then(Value::as_bool)
                .ok_or_else(|| format!("{ctx}: `present` must be a boolean"))?,
        })
    }
}

/// Runtime observability knobs for a scenario run, beyond what the
/// document itself describes (operator flags on `xbgp-sim`, not scenario
/// content).
#[derive(Debug, Clone, Copy, Default)]
pub struct RunOptions {
    /// Trace 1 route in this many through every router's flight recorder
    /// (0 = tracing off).
    pub trace_sample: u64,
    /// Enable every router's VM execution profiler (`xbgp_prof_*`
    /// series in the metrics snapshot).
    pub profile: bool,
    /// Trace-id namespace base: router `i` records under shard
    /// `(shard_base << 8) | i`, so per-router timelines from sharded
    /// replicas stay attributable after the merge.
    pub shard_base: u32,
    /// Bytecode execution engine for every router in the scenario
    /// (`--engine` on `xbgp-sim`). Routing outcomes are engine-invariant.
    pub engine: xbgp_core::Engine,
}

/// Outcome of a scenario run.
#[derive(Debug)]
pub struct ScenarioReport {
    pub name: String,
    /// `(description, passed)` per expectation, in timeline order.
    pub checks: Vec<(String, bool)>,
    /// Final `(router, table size)` summary.
    pub tables: Vec<(String, usize)>,
    /// Merged final metrics of every router, each tagged with a
    /// `router` label on top of its `daemon` label.
    pub metrics: xbgp_obs::Snapshot,
    /// Every router's flight-recorder dump merged into one timeline
    /// (when [`RunOptions::trace_sample`] is set).
    pub trace: Option<TraceDump>,
}

impl ScenarioReport {
    pub fn all_passed(&self) -> bool {
        self.checks.iter().all(|(_, ok)| *ok)
    }
}

/// Build a preset manifest by name.
fn build_manifest(spec: &ExtensionSpecJson) -> Result<Manifest, String> {
    if let Some(doc) = &spec.manifest {
        return Manifest::from_json(&doc.to_string());
    }
    let preset = spec.preset.as_deref().ok_or("extensions need `preset` or `manifest`")?;
    let get_u64 = |key: &str| -> Option<u64> { spec.params.get(key).and_then(Value::as_u64) };
    match preset {
        "igp_filter" => Ok(xbgp_progs::igp_filter::manifest()),
        "route_reflect" => Ok(xbgp_progs::route_reflect::manifest()),
        "origin_validation" => Ok(xbgp_progs::origin_validation::manifest()),
        "geoloc" => Ok(xbgp_progs::geoloc::manifest(get_u64("max_dist2"))),
        "valley_free" => {
            let pairs: Vec<(u32, u32)> = spec
                .params
                .get("pairs")
                .and_then(Value::as_array)
                .ok_or("valley_free needs params.pairs: [[below, above], ...]")?
                .iter()
                .map(|p| {
                    let pair = p.as_array().ok_or("pair must be [below, above]")?;
                    let below = pair.first().and_then(|v| v.as_u64());
                    let above = pair.get(1).and_then(|v| v.as_u64());
                    match (below, above) {
                        (Some(b), Some(a)) => Ok((b as u32, a as u32)),
                        _ => Err("pair must be two ASNs".to_string()),
                    }
                })
                .collect::<Result<_, String>>()?;
            let dc: Ipv4Prefix = spec
                .params
                .get("dc_prefix")
                .and_then(Value::as_str)
                .ok_or("valley_free needs params.dc_prefix")?
                .parse()
                .map_err(|e: String| e)?;
            Ok(xbgp_progs::valley_free::manifest(&pairs, dc))
        }
        other => Err(format!("unknown preset `{other}`")),
    }
}

struct Placeholder;
impl netsim::Node for Placeholder {
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Run a scenario to completion with default observability options.
pub fn run(scenario: &Scenario) -> Result<ScenarioReport, String> {
    run_with_options(scenario, &RunOptions::default())
}

/// Run a scenario to completion.
pub fn run_with_options(scenario: &Scenario, opts: &RunOptions) -> Result<ScenarioReport, String> {
    let mut sim = Sim::new(SimConfig::default());
    let trace_cfg = |router_idx: usize| {
        (opts.trace_sample > 0).then_some(TraceConfig {
            sample_every: opts.trace_sample,
            capacity: 0,
            shard: (opts.shard_base << 8) | router_idx as u32,
        })
    };

    // Resolve routers.
    let mut by_name: HashMap<String, (usize, NodeId)> = HashMap::new();
    let mut nodes = Vec::new();
    for (i, r) in scenario.routers.iter().enumerate() {
        let id = sim.add_node(Box::new(Placeholder));
        if by_name.insert(r.name.clone(), (i, id)).is_some() {
            return Err(format!("duplicate router name `{}`", r.name));
        }
        nodes.push(id);
    }
    let addr_of = |name: &str| -> Result<u32, String> {
        let (i, _) = by_name.get(name).ok_or(format!("unknown router `{name}`"))?;
        parse_addr(&scenario.routers[*i].router_id)
    };

    // Links.
    let mut link_ids: HashMap<(String, String), LinkId> = HashMap::new();
    let mut links_of: HashMap<String, Vec<(LinkId, String)>> = HashMap::new();
    for l in &scenario.links {
        let (_, na) = *by_name.get(&l.a).ok_or(format!("unknown router `{}`", l.a))?;
        let (_, nb) = *by_name.get(&l.b).ok_or(format!("unknown router `{}`", l.b))?;
        let id = sim.connect(na, nb, l.latency_us * 1_000);
        link_ids.insert((l.a.clone(), l.b.clone()), id);
        link_ids.insert((l.b.clone(), l.a.clone()), id);
        links_of.entry(l.a.clone()).or_default().push((id, l.b.clone()));
        links_of.entry(l.b.clone()).or_default().push((id, l.a.clone()));
    }
    let find_link = |r: &LinkRef| -> Result<LinkId, String> {
        link_ids
            .get(&(r.a.clone(), r.b.clone()))
            .copied()
            .ok_or(format!("no link {}–{}", r.a, r.b))
    };

    // Churn feeder: a synthetic upstream peering eBGP with the feed
    // router. The stream is always generated over the full table, then
    // filtered to this replica's prefixes, so every shard count replays
    // the same logical churn.
    const FEEDER_ASN: u32 = 64_999;
    const FEEDER_ADDR: u32 = 0x0aff_fffe; // 10.255.255.254
    let mut churn_feed: Option<(NodeId, LinkId, usize)> = None;
    if let Some(c) = &scenario.churn {
        let (fi, feed_node) =
            *by_name.get(&c.feed).ok_or(format!("churn: unknown router `{}`", c.feed))?;
        if scenario.routers[fi].asn == FEEDER_ASN {
            return Err(format!(
                "churn: router `{}` uses AS {FEEDER_ASN}, reserved for the feeder",
                c.feed
            ));
        }
        let mut table = routegen::generate(&routegen::TableSpec::new(c.routes, c.seed));
        let mut rounds = routegen::churn::churn_rounds(&table, &c.spec());
        if let Some((k, m)) = c.shard {
            table.retain(|r| crate::shard::shard_of(&r.prefix, m) == k);
            for round in &mut rounds {
                round.withdrawals.retain(|p| crate::shard::shard_of(p, m) == k);
                round.announcements.retain(|r| crate::shard::shard_of(&r.prefix, m) == k);
            }
        }
        let enc = |u: xbgp_wire::UpdateMsg| {
            xbgp_wire::Message::Update(u).encode(4).expect("update encodes")
        };
        let frames: Vec<Vec<u8>> =
            routegen::to_updates(&table, FEEDER_ADDR, None).into_iter().map(enc).collect();
        let round_frames: Vec<Vec<Vec<u8>>> = rounds
            .iter()
            .map(|r| r.to_updates(FEEDER_ADDR, None).into_iter().map(enc).collect())
            .collect();
        let n_rounds = round_frames.len();
        let f = sim.add_node(Box::new(
            crate::feeder::Feeder::new(FEEDER_ASN, FEEDER_ADDR, frames).with_churn(
                round_frames,
                c.start_secs * SEC,
                c.interval_ms * 1_000_000,
            ),
        ));
        let l = sim.connect(f, feed_node, 100_000);
        churn_feed = Some((f, l, n_rounds));
    }

    // IGP.
    let shared_igp = match &scenario.igp {
        Some(spec) => {
            let mut net = igp::IgpNetwork::new();
            for m in &spec.members {
                net.add_router(addr_of(m)?);
            }
            for l in &spec.links {
                net.add_link(addr_of(&l.a)?, addr_of(&l.b)?, l.metric);
            }
            Some(igp::shared(net))
        }
        None => None,
    };

    // Instantiate routers.
    for r in &scenario.routers {
        let my_addr = parse_addr(&r.router_id)?;
        let originate: Vec<(Ipv4Prefix, u32)> = r
            .originate
            .iter()
            .map(|p| p.parse::<Ipv4Prefix>().map(|px| (px, my_addr)))
            .collect::<Result<_, _>>()?;
        let mut manifest = r.extensions.as_ref().map(build_manifest).transpose()?;
        if scenario.fault_rate > 0.0 {
            // A rate of 1/N becomes "trap every Nth inbound run". The probe
            // delegates (`next`) on clean runs, so appending it leaves the
            // router's own chain semantics intact.
            let period = (1.0 / scenario.fault_rate).round().max(1.0) as u64;
            manifest
                .get_or_insert_with(Manifest::new)
                .push(xbgp_progs::fault_inject::extension(period));
        }
        let xbgp_roas = match r.extensions.as_ref().and_then(|e| e.roas_csv.as_deref()) {
            Some(csv) => Some(rpki::parse_roa_csv(csv).map_err(|e| e.to_string())?),
            None => None,
        };
        let native_roas = match r.native_roas_csv.as_deref() {
            Some(csv) => Some(rpki::parse_roa_csv(csv).map_err(|e| e.to_string())?),
            None => None,
        };
        let xtra: Vec<(String, Vec<u8>)> = r
            .xtra_hex
            .iter()
            .map(|(k, v)| xbgp_core::manifest::from_hex(v).map(|bytes| (k.clone(), bytes)))
            .collect::<Result<_, _>>()?;
        let peers: Vec<(LinkId, String)> = links_of.get(&r.name).cloned().unwrap_or_default();

        let (idx, node) = by_name[&r.name];
        let dut: Dut = r.implementation.parse()?;
        let mut dspec = DaemonSpec::new(r.asn, my_addr);
        for (link, peer_name) in &peers {
            let peer_addr = addr_of(peer_name)?;
            let peer_asn = scenario.routers[by_name[peer_name].0].asn;
            dspec = if r.rr_clients.contains(peer_name) {
                dspec.rr_client(*link, peer_addr, peer_asn)
            } else {
                dspec.neighbor(*link, peer_addr, peer_asn)
            };
        }
        if let Some((_, l, _)) = churn_feed {
            if scenario.churn.as_ref().is_some_and(|c| c.feed == r.name) {
                dspec = dspec.neighbor(l, FEEDER_ADDR, FEEDER_ASN);
            }
        }
        dspec.originate = originate;
        dspec.native_rr = r.native_rr;
        dspec.native_rov = native_roas;
        dspec.xbgp = manifest;
        dspec.xbgp_roas = xbgp_roas;
        dspec.igp = shared_igp.clone();
        dspec.xtra = xtra;
        dspec.trace = trace_cfg(idx);
        dspec.profile = opts.profile;
        dspec.engine = opts.engine;
        sim.replace_node(node, Box::new(build(dut, dspec)));
    }

    // Timeline.
    let mut checks = Vec::new();
    let mut events: Vec<&Event> = scenario.events.iter().collect();
    events.sort_by_key(|e| e.at_secs);
    let has_route = |sim: &mut Sim, router: &str, prefix: &str| -> Result<bool, String> {
        let (_, node) = *by_name.get(router).ok_or(format!("unknown router `{router}`"))?;
        let p: Ipv4Prefix = prefix.parse()?;
        Ok(sim.node_ref::<DutNode>(node).0.has_best_route(&p))
    };
    let mut last = 0u64;
    for ev in events {
        sim.run_until(ev.at_secs * SEC);
        last = ev.at_secs;
        if let Some(r) = &ev.fail_link {
            sim.set_link_up(find_link(r)?, false);
        }
        if let Some(r) = &ev.restore_link {
            sim.set_link_up(find_link(r)?, true);
        }
        if let Some(r) = &ev.flap_link {
            let l = find_link(r)?;
            sim.set_link_up(l, false);
            sim.run_until(ev.at_secs * SEC + SEC);
            sim.set_link_up(l, true);
        }
        if let Some(r) = &ev.fail_igp_link {
            let igp = shared_igp.as_ref().ok_or("scenario has no igp section")?;
            if !igp.borrow_mut().set_link_up(addr_of(&r.a)?, addr_of(&r.b)?, false) {
                return Err(format!("no IGP link {}–{}", r.a, r.b));
            }
        }
        if let Some(e) = &ev.expect_route {
            let got = has_route(&mut sim, &e.router, &e.prefix)?;
            checks.push((
                format!(
                    "t={}s: {} {} {}",
                    ev.at_secs,
                    e.router,
                    if e.present { "has" } else { "does not have" },
                    e.prefix
                ),
                got == e.present,
            ));
        }
    }
    sim.run_until((last + scenario.settle_secs) * SEC);

    // Churn epilogue: run until every round has been replayed, settle so
    // the final (restore) round converges, then pin correctness — each
    // router's incremental Loc-RIB must be byte-identical to its
    // full-recompute oracle. Oracle results join the check list, so a
    // divergence fails the scenario like any missed `expect_route`.
    if let Some((f, _, n_rounds)) = churn_feed {
        let mut deadline = sim.now();
        loop {
            if sim.node_ref::<crate::feeder::Feeder>(f).rounds_sent >= n_rounds {
                break;
            }
            deadline += 30 * SEC;
            if deadline > 1_000_000 * SEC {
                return Err("churn rounds stalled".to_string());
            }
            sim.run_until(deadline);
        }
        let settle = sim.now() + scenario.settle_secs.max(5) * SEC;
        sim.run_until(settle);
        if scenario.churn.as_ref().is_some_and(|c| c.check_oracle) {
            for (i, r) in scenario.routers.iter().enumerate() {
                let diff = {
                    let d = sim.node_mut::<DutNode>(nodes[i]);
                    let incremental = d.0.loc_rib_dump();
                    crate::churn::dump_diff(&incremental, &d.0.oracle_loc_rib_dump())
                };
                checks.push((
                    format!("churn oracle: {} incremental Loc-RIB matches full recompute", r.name),
                    diff == 0,
                ));
            }
        }
    }

    // Final tables, metrics and traces.
    let mut tables = Vec::new();
    let mut metrics = xbgp_obs::Snapshot::default();
    let mut dumps = Vec::new();
    for (i, r) in scenario.routers.iter().enumerate() {
        let node = nodes[i];
        let (n, snap, dump) = {
            let d = sim.node_mut::<DutNode>(node);
            (d.0.loc_rib_len(), d.0.metrics_snapshot(), d.0.take_trace())
        };
        tables.push((r.name.clone(), n));
        metrics
            .merge(snap.with_labels(&[("router", &r.name)]))
            .expect("routers share the bucket layout");
        dumps.extend(dump);
    }
    let trace = (opts.trace_sample > 0).then(|| TraceDump::merge(dumps));
    Ok(ScenarioReport { name: scenario.name.clone(), checks, tables, metrics, trace })
}

/// Run a scenario with its originated prefixes split across `shards`
/// replica simulations.
///
/// BGP propagation is independent per prefix over a fixed topology, so a
/// scenario shards the same way a table load does (see [`crate::shard`]):
/// replica `k` runs the full topology and the full failure timeline but
/// originates only the prefixes whose [`crate::shard::shard_of`] hash is
/// `k`, and each `expect_route` check is evaluated in the replica owning
/// its prefix. Each replica's complete state lives on its own worker
/// thread; only the `Send` [`ScenarioReport`]s come back. The merged
/// report has checks reassembled in timeline order, per-router table
/// sizes summed, and metric snapshots merged (matching counters sum).
/// `shards <= 1` is exactly [`run`].
pub fn run_sharded(scenario: &Scenario, shards: usize) -> Result<ScenarioReport, String> {
    run_sharded_with_options(scenario, shards, &RunOptions::default())
}

/// [`run_sharded`] with observability options. Each replica records
/// trace ids under its own shard namespace (`shard_base = k`), so the
/// merged timeline stays attributable to both replica and router.
pub fn run_sharded_with_options(
    scenario: &Scenario,
    shards: usize,
    opts: &RunOptions,
) -> Result<ScenarioReport, String> {
    if shards <= 1 {
        return run_with_options(scenario, opts);
    }
    let owner = |prefix: &str| -> usize {
        match prefix.parse::<Ipv4Prefix>() {
            Ok(p) => crate::shard::shard_of(&p, shards),
            // Unparseable prefixes go to replica 0, whose own run()
            // surfaces the error.
            Err(_) => 0,
        }
    };
    let replicas: Vec<Scenario> = (0..shards)
        .map(|k| {
            let mut s = scenario.clone();
            for r in &mut s.routers {
                r.originate.retain(|p| owner(p) == k);
            }
            for e in &mut s.events {
                if e.expect_route.as_ref().is_some_and(|x| owner(&x.prefix) != k) {
                    e.expect_route = None;
                }
            }
            if let Some(c) = &mut s.churn {
                c.shard = Some((k, shards));
            }
            s
        })
        .collect();

    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::scope(|scope| {
        for (k, replica) in replicas.iter().enumerate() {
            let tx = tx.clone();
            let opts = RunOptions { shard_base: k as u32, ..*opts };
            scope.spawn(move || {
                let _ = tx.send((k, run_with_options(replica, &opts)));
            });
        }
    });
    drop(tx);
    let mut collected: Vec<(usize, Result<ScenarioReport, String>)> = rx.iter().collect();
    collected.sort_by_key(|(k, _)| *k);
    let mut reports = Vec::with_capacity(shards);
    for (_, r) in collected {
        reports.push(r?);
    }

    // Each replica evaluated its own checks in timeline order; replay the
    // original (sorted) timeline and pull every check from its owner so
    // the merged list reads exactly like a sequential run's.
    let mut queues: Vec<std::collections::VecDeque<(String, bool)>> =
        reports.iter_mut().map(|r| std::mem::take(&mut r.checks).into()).collect();
    let mut events: Vec<&Event> = scenario.events.iter().collect();
    events.sort_by_key(|e| e.at_secs);
    let mut checks = Vec::new();
    for ev in events {
        if let Some(x) = &ev.expect_route {
            if let Some(c) = queues[owner(&x.prefix)].pop_front() {
                checks.push(c);
            }
        }
    }
    // Churn-oracle checks are not tied to timeline events: every replica
    // self-checks its own RIBs, and the merged report ANDs the verdicts
    // per description (the invariant is per-RIB, so all must hold).
    let mut oracle_checks: Vec<(String, bool)> = Vec::new();
    for q in &mut queues {
        while let Some((desc, ok)) = q.pop_front() {
            match oracle_checks.iter_mut().find(|(d, _)| *d == desc) {
                Some(e) => e.1 &= ok,
                None => oracle_checks.push((desc, ok)),
            }
        }
    }
    checks.extend(oracle_checks);

    let mut tables = std::mem::take(&mut reports[0].tables);
    for r in &reports[1..] {
        for (acc, (name, n)) in tables.iter_mut().zip(&r.tables) {
            debug_assert_eq!(&acc.0, name);
            acc.1 += n;
        }
    }
    let mut metrics = xbgp_obs::Snapshot::default();
    let mut dumps = Vec::new();
    for r in reports {
        metrics.merge(r.metrics).expect("replicas share the bucket layout");
        dumps.extend(r.trace);
    }
    let trace = (opts.trace_sample > 0).then(|| TraceDump::merge(dumps));
    Ok(ScenarioReport { name: scenario.name.clone(), checks, tables, metrics, trace })
}

/// Parse a scenario document from JSON.
pub fn parse(json: &str) -> Result<Scenario, String> {
    let doc = Value::parse(json)?;
    Scenario::from_value(&doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    const LISTING1: &str = r#"{
        "name": "listing1-demo",
        "routers": [
            { "name": "london", "implementation": "fir", "asn": 65000,
              "router_id": "10.0.0.1", "originate": ["203.0.113.0/24"] },
            { "name": "berlin", "implementation": "fir", "asn": 65000,
              "router_id": "10.0.0.3",
              "extensions": { "preset": "igp_filter" } },
            { "name": "peer", "implementation": "wren", "asn": 65009,
              "router_id": "10.0.0.9" }
        ],
        "links": [
            { "a": "london", "b": "berlin" },
            { "a": "berlin", "b": "peer" }
        ],
        "igp": {
            "members": ["london", "berlin", "amsterdam-stub", "newyork-stub"],
            "links": [
                { "a": "london", "b": "berlin", "metric": 10 }
            ]
        },
        "events": [
            { "at_secs": 5,
              "expect_route": { "router": "peer", "prefix": "203.0.113.0/24", "present": true } },
            { "at_secs": 10, "fail_igp_link": { "a": "london", "b": "berlin" } },
            { "at_secs": 11, "flap_link": { "a": "london", "b": "berlin" } },
            { "at_secs": 60,
              "expect_route": { "router": "peer", "prefix": "203.0.113.0/24", "present": false } }
        ]
    }"#;

    #[test]
    fn listing1_scenario_runs_and_passes() {
        // The igp members list includes stub names that are not BGP
        // routers — resolve only real ones.
        let mut scenario = parse(LISTING1).expect("parses");
        scenario.igp.as_mut().unwrap().members.retain(|m| !m.ends_with("-stub"));
        let report = run(&scenario).expect("runs");
        assert_eq!(report.checks.len(), 2);
        assert!(report.all_passed(), "{:?}", report.checks);
        // After the IGP failure London is unreachable, so berlin's and
        // peer's tables shrink.
        let peer_table = report.tables.iter().find(|(n, _)| n == "peer").unwrap();
        assert_eq!(peer_table.1, 0);
    }

    #[test]
    fn mixed_implementations_cross_validate() {
        let json = r#"{
            "name": "interop",
            "routers": [
                { "name": "a", "implementation": "fir", "asn": 65001,
                  "router_id": "10.0.0.1", "originate": ["10.1.0.0/16"] },
                { "name": "b", "implementation": "wren", "asn": 65002,
                  "router_id": "10.0.0.2", "originate": ["10.2.0.0/16"] }
            ],
            "links": [ { "a": "a", "b": "b" } ],
            "events": [
                { "at_secs": 5, "expect_route": { "router": "a", "prefix": "10.2.0.0/16", "present": true } },
                { "at_secs": 5, "expect_route": { "router": "b", "prefix": "10.1.0.0/16", "present": true } }
            ]
        }"#;
        let report = run(&parse(json).unwrap()).unwrap();
        assert!(report.all_passed(), "{:?}", report.checks);
        assert!(report.tables.iter().all(|(_, n)| *n == 2));
    }

    #[test]
    fn ov_preset_with_roa_csv() {
        let json = r#"{
            "name": "ov",
            "routers": [
                { "name": "src", "implementation": "fir", "asn": 65001,
                  "router_id": "10.0.0.1", "originate": ["10.1.0.0/16"] },
                { "name": "dut", "implementation": "wren", "asn": 65002,
                  "router_id": "10.0.0.2",
                  "extensions": { "preset": "origin_validation",
                                   "roas_csv": "AS65001,10.1.0.0/16,16,test\n" } }
            ],
            "links": [ { "a": "src", "b": "dut" } ],
            "events": [
                { "at_secs": 5, "expect_route": { "router": "dut", "prefix": "10.1.0.0/16", "present": true } }
            ]
        }"#;
        let report = run(&parse(json).unwrap()).unwrap();
        assert!(report.all_passed(), "{:?}", report.checks);
    }

    #[test]
    fn sharded_scenario_matches_sequential_run() {
        // Several prefixes spread across shards, with checks on each, so
        // every replica owns some of the work.
        let json = r#"{
            "name": "sharded",
            "routers": [
                { "name": "a", "implementation": "fir", "asn": 65001,
                  "router_id": "10.0.0.1",
                  "originate": ["10.1.0.0/16", "10.2.0.0/16", "10.3.0.0/16", "10.4.0.0/16"] },
                { "name": "b", "implementation": "wren", "asn": 65002,
                  "router_id": "10.0.0.2", "originate": ["10.9.0.0/16"] }
            ],
            "links": [ { "a": "a", "b": "b" } ],
            "events": [
                { "at_secs": 5, "expect_route": { "router": "b", "prefix": "10.1.0.0/16", "present": true } },
                { "at_secs": 5, "expect_route": { "router": "b", "prefix": "10.2.0.0/16", "present": true } },
                { "at_secs": 5, "expect_route": { "router": "b", "prefix": "10.3.0.0/16", "present": true } },
                { "at_secs": 5, "expect_route": { "router": "a", "prefix": "10.9.0.0/16", "present": true } },
                { "at_secs": 5, "expect_route": { "router": "b", "prefix": "10.7.0.0/16", "present": false } }
            ]
        }"#;
        let scenario = parse(json).unwrap();
        let seq = run(&scenario).unwrap();
        for shards in [1, 2, 4] {
            let sharded = run_sharded(&scenario, shards).unwrap();
            assert_eq!(sharded.checks, seq.checks, "shards={shards}");
            assert_eq!(sharded.tables, seq.tables, "shards={shards}");
            assert!(sharded.all_passed());
        }
    }

    #[test]
    fn fault_rate_injects_the_probe_and_routing_survives() {
        // Every inbound run faults (rate 1.0): all staged mutations roll
        // back, every route still converges natively, and the rollbacks
        // are visible in the merged metrics. The probe quarantines itself
        // at rate 1.0 (three consecutive faults), which must also show up.
        let json = r#"{
            "name": "fault-smoke",
            "routers": [
                { "name": "a", "implementation": "fir", "asn": 65001,
                  "router_id": "10.0.0.1",
                  "originate": ["10.1.0.0/16", "10.2.0.0/16", "10.3.0.0/16", "10.4.0.0/16"] },
                { "name": "b", "implementation": "wren", "asn": 65002,
                  "router_id": "10.0.0.2", "originate": ["10.9.0.0/16"] }
            ],
            "links": [ { "a": "a", "b": "b" } ],
            "events": [
                { "at_secs": 5, "expect_route": { "router": "b", "prefix": "10.1.0.0/16", "present": true } },
                { "at_secs": 5, "expect_route": { "router": "a", "prefix": "10.9.0.0/16", "present": true } }
            ],
            "fault_rate": 1.0
        }"#;
        let scenario = parse(json).unwrap();
        assert_eq!(scenario.fault_rate, 1.0);
        let report = run(&scenario).unwrap();
        assert!(report.all_passed(), "{:?}", report.checks);
        assert!(report.tables.iter().all(|(_, n)| *n == 5), "{:?}", report.tables);
        assert!(report.metrics.counter_sum("xbgp_vmm_rollbacks_total") > 0, "rollbacks counted");
        assert!(report.metrics.counter_sum("xbgp_vmm_quarantines_total") > 0);

        // A gentler rate (every 2nd run) never trips the breaker.
        let json = json.replace("\"fault_rate\": 1.0", "\"fault_rate\": 0.5");
        let report = run(&parse(&json).unwrap()).unwrap();
        assert!(report.all_passed(), "{:?}", report.checks);
        assert!(report.metrics.counter_sum("xbgp_vmm_rollbacks_total") > 0);
        assert_eq!(report.metrics.counter_sum("xbgp_vmm_quarantines_total"), 0);
    }

    #[test]
    fn trace_reconstructs_route_flow_and_fault_postmortem() {
        use xbgp_obs::trace::TraceKind;
        // The fault_smoke fixture with rate 1.0: every inbound-filter run
        // stages a host mutation then traps, so a sampled route's
        // timeline carries the whole ingest → decode → hook → rollback →
        // decision → propagate flow, and the probe's quarantine leaves a
        // postmortem naming the faulting pc and insertion point.
        let json = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../scenarios/fault_smoke.json"
        ))
        .expect("fixture present");
        let mut scenario = parse(&json).expect("parses");
        scenario.fault_rate = 1.0;
        let opts = RunOptions { trace_sample: 1, profile: true, ..Default::default() };
        let report = run_with_options(&scenario, &opts).expect("runs");
        assert!(report.all_passed(), "{:?}", report.checks);

        let dump = report.trace.as_ref().expect("tracing on");
        let ids = |kind: TraceKind| -> std::collections::BTreeSet<u64> {
            dump.events.iter().filter(|e| e.kind == kind).map(|e| e.trace_id).collect()
        };
        // At least one sampled route reconstructs end to end, rollback
        // included: the same trace id appears at every stage.
        let full: Vec<u64> = ids(TraceKind::Decode)
            .intersection(&ids(TraceKind::TxnRollback))
            .copied()
            .collect::<std::collections::BTreeSet<u64>>()
            .intersection(&ids(TraceKind::Decision))
            .copied()
            .collect::<std::collections::BTreeSet<u64>>()
            .intersection(&ids(TraceKind::Propagate))
            .copied()
            .collect();
        assert!(!full.is_empty(), "no trace id spans decode→rollback→decision→propagate");
        assert!(!ids(TraceKind::Ingest).is_empty());
        assert!(!ids(TraceKind::Fault).is_empty());

        // The quarantined probe's postmortem names the faulting pc and
        // the insertion point, and carries the flight-recorder context.
        let pm = dump
            .postmortems
            .iter()
            .find(|pm| pm.quarantined)
            .expect("rate 1.0 trips the breaker");
        assert_eq!(pm.extension, "fault_inject");
        assert_eq!(usize::from(pm.point), 1, "inbound filter");
        assert!(pm.pc.is_some(), "faulting pc recorded");
        assert!(!pm.events.is_empty(), "last-N context attached");
        let fault = pm.events.iter().rev().find(|e| e.kind == TraceKind::Fault);
        assert_eq!(fault.map(|e| e.a), pm.pc, "context fault matches the pc");

        // The profiler ran alongside: xbgp_prof_* series are exported.
        assert!(
            report.metrics.metrics.iter().any(|m| m.name.starts_with("xbgp_prof_")),
            "profiler series exported"
        );

        // The merged multi-router dump round-trips through JSONL.
        let names = crate::trace_point_names();
        let back = xbgp_obs::trace::TraceDump::from_jsonl(&dump.to_jsonl(&names), &names)
            .expect("round-trips");
        assert_eq!(back.events.len(), dump.events.len());
        assert_eq!(back.postmortems.len(), dump.postmortems.len());
    }

    #[test]
    fn churn_storm_fixture_passes_oracle_sequential_and_sharded() {
        // The committed fixture, scaled down for test time: the feeder
        // blasts a table at the FIR dut (which re-exports to the WREN
        // edge), replays the storm, and every router's incremental
        // Loc-RIB must match its full-recompute oracle — sequentially and
        // sharded, with fault injection live.
        let json = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../scenarios/churn_storm.json"
        ))
        .expect("fixture present");
        let mut scenario = parse(&json).expect("parses");
        let churn = scenario.churn.as_mut().unwrap();
        churn.routes = 500;
        churn.rounds = 6;
        for shards in [1, 2] {
            let report = run_sharded(&scenario, shards).expect("runs");
            assert!(report.all_passed(), "shards={shards}: {:?}", report.checks);
            let oracle_checks =
                report.checks.iter().filter(|(d, _)| d.starts_with("churn oracle")).count();
            assert_eq!(oracle_checks, 2, "one oracle verdict per router");
            // The churn counters made it into the merged metrics.
            assert!(report.metrics.counter_sum("xbgp_rib_best_changes_total") > 0);
            assert!(report.metrics.counter_sum("xbgp_rib_withdrawals_total") > 0);
            // The feed router ends holding its peer's prefix + the table.
            let dut = report.tables.iter().find(|(n, _)| n == "dut").unwrap();
            assert_eq!(dut.1, 501, "restore round converged, shards={shards}");
        }
    }

    #[test]
    fn churn_rejects_unknown_fields_and_bad_rates() {
        let base = r#"{
            "name": "x",
            "routers": [ { "name": "a", "implementation": "fir", "asn": 1, "router_id": "10.0.0.1" } ],
            "links": [],
            "churn": { "feed": "a", "routes": 10, CHURN }
        }"#;
        let err = parse(&base.replace("CHURN", "\"widthdraw_per_mille\": 5")).unwrap_err();
        assert!(err.contains("widthdraw_per_mille"), "{err}");
        let err = parse(&base.replace("CHURN", "\"withdraw_per_mille\": 1500")).unwrap_err();
        assert!(err.contains("per-mille"), "{err}");
        let ok = parse(&base.replace("CHURN", "\"withdraw_per_mille\": 200")).unwrap();
        assert_eq!(ok.churn.as_ref().unwrap().withdraw_per_mille, 200);
        assert_eq!(ok.churn.as_ref().unwrap().reannounce_per_mille, 500, "default");
    }

    #[test]
    fn fault_rate_out_of_range_is_rejected() {
        let err =
            parse(r#"{"name": "x", "routers": [], "links": [], "fault_rate": 1.5}"#).unwrap_err();
        assert!(err.contains("fault_rate"), "{err}");
    }

    #[test]
    fn unknown_names_are_rejected() {
        let json = r#"{
            "name": "bad",
            "routers": [
                { "name": "a", "implementation": "fir", "asn": 1, "router_id": "10.0.0.1" }
            ],
            "links": [ { "a": "a", "b": "ghost" } ]
        }"#;
        assert!(run(&parse(json).unwrap()).unwrap_err().contains("ghost"));

        let json = r#"{
            "name": "bad2",
            "routers": [
                { "name": "a", "implementation": "quagga", "asn": 1, "router_id": "10.0.0.1" }
            ],
            "links": []
        }"#;
        assert!(run(&parse(json).unwrap()).unwrap_err().contains("quagga"));
    }

    #[test]
    fn unknown_fields_are_rejected() {
        let json = r#"{
            "name": "typo",
            "routers": [
                { "name": "a", "implementation": "fir", "asn": 1,
                  "router_id": "10.0.0.1", "originate_prefixes": [] }
            ],
            "links": []
        }"#;
        let err = parse(json).unwrap_err();
        assert!(err.contains("originate_prefixes"), "{err}");

        let err =
            parse(r#"{"name": "x", "routers": [], "links": [], "sette_secs": 1}"#).unwrap_err();
        assert!(err.contains("sette_secs"), "{err}");
    }
}
