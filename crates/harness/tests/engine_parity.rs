//! The compiled engine's bit-for-bit contract, end to end: switching
//! `--engine` must change *nothing* observable about routing — the
//! Loc-RIB bytes in every Fig. 3 configuration, and under full-rate
//! fault injection the exact fault kinds and slot pcs, the rollback
//! sequence, and the quarantine postmortems.

use xbgp_core::Engine;
use xbgp_harness::fig3::{run, Dut, Fig3Spec, UseCase};
use xbgp_harness::scenario::{parse, run_with_options, RunOptions, ScenarioReport};
use xbgp_obs::trace::TraceKind;

const ROUTES: usize = 200;
const SEED: u64 = 7;

fn spec(dut: Dut, use_case: UseCase, extension: bool, engine: Engine) -> Fig3Spec {
    Fig3Spec {
        dut,
        use_case,
        extension,
        routes: ROUTES,
        seed: SEED,
        metrics: false,
        shards: 1,
        rib_dump: true,
        trace_sample: 0,
        profile: false,
        engine,
    }
}

#[test]
fn all_eight_fig3_configs_have_byte_identical_loc_ribs_across_engines() {
    for dut in [Dut::Fir, Dut::Wren] {
        for use_case in [UseCase::RouteReflection, UseCase::OriginValidation] {
            for extension in [false, true] {
                let ctx = format!("{} / {} / ext={extension}", dut.name(), use_case.name());
                let interp = run(&spec(dut, use_case, extension, Engine::Interp));
                let compiled = run(&spec(dut, use_case, extension, Engine::Compiled));
                assert_eq!(interp.prefixes_delivered, ROUTES, "{ctx}");
                assert_eq!(compiled.prefixes_delivered, ROUTES, "{ctx}");
                let a = interp.loc_rib.expect("rib_dump requested");
                let b = compiled.loc_rib.expect("rib_dump requested");
                assert_eq!(a.len(), ROUTES, "{ctx}: full table");
                assert_eq!(a, b, "{ctx}: engines must produce byte-identical Loc-RIBs");
            }
        }
    }
}

/// Every trace event, with the one wall-clock payload (`HelperCall`
/// latency) masked; everything else — route scopes, pcs, error codes,
/// staged-op counts, decision outcomes — is deterministic and must match.
fn event_log(report: &ScenarioReport) -> Vec<(u64, TraceKind, u8, u16, u64, u64)> {
    report
        .trace
        .as_ref()
        .expect("tracing enabled")
        .events
        .iter()
        .map(|e| {
            let b = if e.kind == TraceKind::HelperCall { 0 } else { e.b };
            (e.trace_id, e.kind, e.point, e.ext, e.a, b)
        })
        .collect()
}

#[test]
fn fault_smoke_at_full_rate_faults_identically_across_engines() {
    // fault_smoke.json with every inbound run trapping: the probe stages
    // two host mutations and dereferences an unmapped address, so each
    // route produces a MemFault with a specific slot pc. Both engines
    // must fault at the same pcs with the same error codes, roll back the
    // same staged-op counts, and quarantine with the same postmortems.
    let json = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../scenarios/fault_smoke.json"
    ))
    .expect("fixture present");
    let mut scenario = parse(&json).expect("parses");
    scenario.fault_rate = 1.0;

    let run_engine = |engine: Engine| {
        let opts = RunOptions { trace_sample: 1, profile: false, shard_base: 0, engine };
        run_with_options(&scenario, &opts).expect("scenario runs")
    };
    let interp = run_engine(Engine::Interp);
    let compiled = run_engine(Engine::Compiled);
    assert!(interp.all_passed(), "{:?}", interp.checks);
    assert!(compiled.all_passed(), "{:?}", compiled.checks);
    assert_eq!(interp.tables, compiled.tables, "final tables must match");

    let ev_i = event_log(&interp);
    let ev_c = event_log(&compiled);
    let faults = ev_i.iter().filter(|e| e.1 == TraceKind::Fault).count();
    assert!(faults > 0, "rate 1.0 must produce faults");
    assert_eq!(ev_i, ev_c, "trace timelines (fault pcs, kinds, rollbacks) must match");

    let postmortems = |r: &ScenarioReport| -> Vec<(String, Option<u64>, bool)> {
        r.trace
            .as_ref()
            .unwrap()
            .postmortems
            .iter()
            .map(|pm| (pm.extension.clone(), pm.pc, pm.quarantined))
            .collect()
    };
    let pm_i = postmortems(&interp);
    assert!(!pm_i.is_empty(), "rate 1.0 trips the breaker");
    assert_eq!(pm_i, postmortems(&compiled), "postmortem pcs must match");
}
