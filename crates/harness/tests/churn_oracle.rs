//! The churn engine's correctness contract, end to end: after a full
//! storm (withdraw waves, flaps, ROA sweeps, path hunting, restore
//! round) the incremental Loc-RIB must be byte-identical to a
//! from-scratch decision pass — on both daemons, both bytecode engines,
//! sequential and sharded, native and extension, and with the
//! fault-injection probe trapping mid-chain.

use xbgp_core::Engine;
use xbgp_harness::churn::{run, ChurnRunSpec};
use xbgp_harness::fig3::{Dut, UseCase};
use xbgp_harness::scenario::{parse, run_sharded_with_options, RunOptions};

const ROUTES: usize = 300;
const SEED: u64 = 11;

fn spec(dut: Dut, extension: bool, engine: Engine, shards: usize) -> ChurnRunSpec {
    let mut s = ChurnRunSpec::new(dut, UseCase::OriginValidation, ROUTES, SEED);
    s.extension = extension;
    s.engine = engine;
    s.shards = shards;
    s.churn.rounds = 6;
    s
}

#[test]
fn every_cell_matches_the_oracle_and_absorbs_the_same_stream() {
    // {fir, wren} × {native, ext} × {interp, compiled} × {1, 4 shards}.
    for dut in [Dut::Fir, Dut::Wren] {
        for extension in [false, true] {
            let mut absorbed = None;
            for engine in [Engine::Interp, Engine::Compiled] {
                for shards in [1, 4] {
                    let ctx =
                        format!("{} / ext={extension} / {engine:?} / shards={shards}", dut.name());
                    let out = run(&spec(dut, extension, engine, shards));
                    assert_eq!(out.oracle_mismatches, 0, "{ctx}: oracle diverged");
                    assert!(out.best_changes > 0, "{ctx}: the storm moved no best path");
                    // Engines and shard counts see the same logical
                    // stream, so the absorbed-update count is invariant.
                    match absorbed {
                        None => absorbed = Some(out.updates_applied),
                        Some(n) => assert_eq!(out.updates_applied, n, "{ctx}: stream differs"),
                    }
                }
            }
        }
    }
}

#[test]
fn fault_injection_churn_stays_oracle_clean_on_both_engines() {
    // The committed fixture keeps `fault_rate` non-zero, so extension
    // chains trap and roll back mid-storm; the oracle checks the
    // scenario layer appends must still all pass.
    let json = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../scenarios/churn_storm.json"
    ))
    .expect("fixture present");
    let mut scenario = parse(&json).expect("parses");
    assert!(scenario.fault_rate > 0.0, "fixture must keep fault injection live");
    let churn = scenario.churn.as_mut().unwrap();
    churn.routes = 400;
    churn.rounds = 5;
    for engine in [Engine::Interp, Engine::Compiled] {
        for shards in [1, 4] {
            let opts = RunOptions { engine, ..RunOptions::default() };
            let report = run_sharded_with_options(&scenario, shards, &opts).expect("scenario runs");
            assert!(report.all_passed(), "{engine:?} / shards={shards}: {:?}", report.checks);
            let oracle_checks =
                report.checks.iter().filter(|(d, _)| d.starts_with("churn oracle")).count();
            assert_eq!(oracle_checks, 2, "one oracle verdict per router");
            assert!(report.metrics.counter_sum("xbgp_rib_best_changes_total") > 0);
        }
    }
}
