//! Sharding must not change results: a `--shards 4` run produces the
//! same Loc-RIB, byte for byte, as the sequential `--shards 1` path —
//! for both daemons, native and extension variants, and both use cases
//! (origin validation exercises the shard-local ROA tables).

use std::sync::Mutex;
use xbgp_core::{vmm, Engine};
use xbgp_harness::fig3::{run, Dut, Fig3Spec, UseCase};

/// The verify-load counter is process-global; both tests take this lock
/// so one test's extension runs never pollute the other's deltas.
static VMM_COUNTER: Mutex<()> = Mutex::new(());

const ROUTES: usize = 300;
const SEED: u64 = 42;

/// Engine under test: CI runs this suite once per `XBGP_TEST_ENGINE`
/// value (`interp`, `compiled`); unset means the default interpreter.
fn engine() -> Engine {
    match std::env::var("XBGP_TEST_ENGINE") {
        Ok(s) => s.parse().expect("XBGP_TEST_ENGINE must be interp|compiled"),
        Err(_) => Engine::default(),
    }
}

fn spec(dut: Dut, use_case: UseCase, extension: bool, shards: usize) -> Fig3Spec {
    Fig3Spec {
        dut,
        use_case,
        extension,
        routes: ROUTES,
        seed: SEED,
        metrics: false,
        shards,
        rib_dump: true,
        trace_sample: 0,
        profile: false,
        engine: engine(),
    }
}

#[test]
fn sharded_loc_rib_matches_sequential_for_every_configuration() {
    let _guard = VMM_COUNTER.lock().unwrap();
    for dut in [Dut::Fir, Dut::Wren] {
        for use_case in [UseCase::RouteReflection, UseCase::OriginValidation] {
            for extension in [false, true] {
                let sequential = run(&spec(dut, use_case, extension, 1));
                let sharded = run(&spec(dut, use_case, extension, 4));
                let ctx = format!("{} / {} / ext={extension}", dut.name(), use_case.name());
                assert_eq!(sequential.prefixes_delivered, ROUTES, "{ctx}");
                assert_eq!(sharded.prefixes_delivered, ROUTES, "{ctx}");
                let a = sequential.loc_rib.expect("rib_dump requested");
                let b = sharded.loc_rib.expect("rib_dump requested");
                assert_eq!(a.len(), ROUTES, "{ctx}: full table in Loc-RIB");
                assert_eq!(a, b, "{ctx}: shards=4 must reproduce shards=1 exactly");
            }
        }
    }
}

#[test]
fn each_shard_verifies_and_loads_bytecode_exactly_once() {
    // One sequential extension run loads the manifest's programs once;
    // a 4-shard run builds one Vmm per shard, so it loads 4× that —
    // never once per UPDATE batch.
    let _guard = VMM_COUNTER.lock().unwrap();
    let before = vmm::verify_load_count();
    run(&spec(Dut::Fir, UseCase::OriginValidation, true, 1));
    let per_vmm = vmm::verify_load_count() - before;
    assert!(per_vmm > 0, "extension run verifies at least one program");

    let before = vmm::verify_load_count();
    run(&spec(Dut::Fir, UseCase::OriginValidation, true, 4));
    let sharded = vmm::verify_load_count() - before;
    assert_eq!(sharded, 4 * per_vmm, "one verify+pre-decode per shard VMM");
}
