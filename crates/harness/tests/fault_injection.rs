//! The transactional execution contract, end to end: an extension that
//! stages host mutations (`set_attr` twice) and then traps must leave the
//! Loc-RIB **byte-identical** to a native run — on both daemons — and a
//! persistently faulting extension must be quarantined by the circuit
//! breaker with the event visible in the metrics snapshot.

use bgp_fir::{FirConfig, FirDaemon};
use bgp_wren::{WrenConfig, WrenDaemon};
use netsim::{Sim, SimConfig};
use xbgp_core::vmm::QUARANTINE_THRESHOLD;
use xbgp_core::{Engine, Manifest};
use xbgp_progs::fault_inject;
use xbgp_wire::Ipv4Prefix;

const SEC: u64 = 1_000_000_000;
const MS: u64 = 1_000_000;
const ROUTES: usize = 12;

struct Placeholder;
impl netsim::Node for Placeholder {
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Engine under test: CI runs this suite once per `XBGP_TEST_ENGINE`
/// value (`interp`, `compiled`); unset means the default interpreter.
/// The transactional contract (rollback, quarantine, byte-identical
/// Loc-RIBs) must hold on both.
fn engine() -> Engine {
    match std::env::var("XBGP_TEST_ENGINE") {
        Ok(s) => s.parse().expect("XBGP_TEST_ENGINE must be interp|compiled"),
        Err(_) => Engine::default(),
    }
}

#[derive(Clone, Copy)]
enum DutKind {
    Fir,
    Wren,
}

struct DutOutcome {
    loc_rib: Vec<(Ipv4Prefix, Vec<u8>)>,
    stats: Vec<xbgp_core::vmm::ExtensionStats>,
    metrics: xbgp_obs::Snapshot,
}

/// Two-router chain: a FIR origin feeds `ROUTES` prefixes into the DUT,
/// which optionally runs `manifest` at its insertion points.
fn run_dut(kind: DutKind, manifest: Option<Manifest>, metrics: bool) -> DutOutcome {
    let mut sim = Sim::new(SimConfig::default());
    let origin = sim.add_node(Box::new(Placeholder));
    let dut = sim.add_node(Box::new(Placeholder));
    let link = sim.connect(origin, dut, MS);

    let mut cfg_origin = FirConfig::new(65001, 1).neighbor(link, 2, 65002);
    cfg_origin.originate = (0..ROUTES)
        .map(|i| (format!("10.{i}.0.0/16").parse::<Ipv4Prefix>().unwrap(), 1))
        .collect();
    sim.replace_node(origin, Box::new(FirDaemon::new(cfg_origin)));

    match kind {
        DutKind::Fir => {
            let mut cfg = FirConfig::new(65002, 2).neighbor(link, 1, 65001);
            cfg.xbgp = manifest;
            cfg.metrics = metrics;
            cfg.engine = engine();
            sim.replace_node(dut, Box::new(FirDaemon::new(cfg)));
        }
        DutKind::Wren => {
            let mut cfg = WrenConfig::new(65002, 2).neighbor(link, 1, 65001);
            cfg.xbgp = manifest;
            cfg.metrics = metrics;
            cfg.engine = engine();
            sim.replace_node(dut, Box::new(WrenDaemon::new(cfg)));
        }
    }
    sim.run_until(5 * SEC);

    match kind {
        DutKind::Fir => {
            let d: &FirDaemon = sim.node_ref(dut);
            DutOutcome {
                loc_rib: d.loc_rib_dump(),
                stats: d.xbgp_stats(),
                metrics: d.metrics_snapshot(),
            }
        }
        DutKind::Wren => {
            let d: &WrenDaemon = sim.node_ref(dut);
            DutOutcome {
                loc_rib: d.loc_rib_dump(),
                stats: d.xbgp_stats(),
                metrics: d.metrics_snapshot(),
            }
        }
    }
}

#[test]
fn trap_after_staged_mutations_leaves_loc_rib_byte_identical() {
    for (kind, name) in [(DutKind::Fir, "fir"), (DutKind::Wren, "wren")] {
        let native = run_dut(kind, None, false);
        assert_eq!(native.loc_rib.len(), ROUTES, "{name}: native run converged");

        // Period 1: the probe stages two `set_attr`s of a scratch
        // attribute and traps on *every* dispatched run. The breaker
        // quarantines it after QUARANTINE_THRESHOLD faults; every route
        // before and after must come out exactly as the native run's.
        let faulty = run_dut(kind, Some(fault_inject::manifest(1)), false);
        assert_eq!(faulty.loc_rib.len(), ROUTES, "{name}: faults never lose routes");
        assert_eq!(
            native.loc_rib, faulty.loc_rib,
            "{name}: staged-then-trapped mutations must roll back to byte-identical state"
        );

        let probe = &faulty.stats[0];
        assert!(probe.errors > 0, "{name}: the probe actually faulted");
    }
}

#[test]
fn persistent_faults_trip_the_breaker_and_surface_in_metrics() {
    for (kind, daemon) in [(DutKind::Fir, "bgp-fir"), (DutKind::Wren, "bgp-wren")] {
        let out = run_dut(kind, Some(fault_inject::manifest(1)), true);
        assert_eq!(out.loc_rib.len(), ROUTES);

        let probe = &out.stats[0];
        assert_eq!(probe.errors, u64::from(QUARANTINE_THRESHOLD), "{daemon}");
        assert!(probe.quarantined, "{daemon}: breaker tripped");

        let labels = &[("daemon", daemon)];
        assert_eq!(
            out.metrics.counter_value("xbgp_vmm_quarantines_total", labels),
            Some(1),
            "{daemon}: quarantine counted"
        );
        // Every fault staged mutations first (the probe set_attrs before
        // trapping), so rollbacks track errors one-for-one.
        assert_eq!(
            out.metrics.counter_sum("xbgp_vmm_rollbacks_total"),
            u64::from(QUARANTINE_THRESHOLD),
            "{daemon}: every fault rolled back staged state"
        );
        assert_eq!(
            out.metrics.counter_value(
                "xbgp_vmm_extension_quarantined",
                &[("daemon", daemon), ("extension", "fault_inject")],
            ),
            Some(1),
            "{daemon}: per-extension quarantine flag exported"
        );
    }
}
