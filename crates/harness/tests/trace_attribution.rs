//! Route-scope attribution under faults: a faulting route and the clean
//! route after it must carry *different* trace ids, and the fault events
//! (Fault, TxnRollback, the postmortem) must stay attributed to the route
//! that actually faulted. Guards the `begin_route`/`end_route` pairing in
//! both daemons' UPDATE loops — a leaked scope on the abort path would let
//! the next route inherit the previous trace id.

use bgp_fir::{FirConfig, FirDaemon};
use bgp_wren::{WrenConfig, WrenDaemon};
use netsim::{Sim, SimConfig};
use xbgp_obs::trace::{pack_prefix, TraceConfig, TraceDump, TraceKind};
use xbgp_progs::fault_inject;
use xbgp_wire::attr::Origin;
use xbgp_wire::{AsPath, Ipv4Prefix, Message, MsgType, PathAttr, UpdateMsg};

const MS: u64 = 1_000_000;
const SEC: u64 = 1_000_000_000;

fn p(s: &str) -> Ipv4Prefix {
    s.parse().unwrap()
}

/// The three routes, sent as three separate UPDATEs so each gets its own
/// ingest scope. The probe's shared invocation counter makes the second
/// inbound-filter run fault (period 2), so the sequence is
/// clean → faulting → clean.
fn routes() -> [Ipv4Prefix; 3] {
    [p("10.1.0.0/16"), p("10.2.0.0/16"), p("10.3.0.0/16")]
}

/// Minimal BGP speaker: finishes the handshake, then announces each route
/// in its own UPDATE message.
struct Origin3 {
    reader: xbgp_wire::MsgReader,
    sent: bool,
}

impl netsim::Node for Origin3 {
    fn on_data(&mut self, ctx: &mut netsim::NodeCtx<'_>, link: netsim::LinkId, data: &[u8]) {
        self.reader.push(data);
        while let Ok(Some(frame)) = self.reader.next_frame() {
            match xbgp_wire::msg::deframe(&frame) {
                Ok((MsgType::Open, _)) => {
                    let open = xbgp_wire::OpenMsg::standard(65009, 9, 90);
                    ctx.send(link, &Message::Open(open).encode(4).unwrap());
                    ctx.send(link, &Message::Keepalive.encode(4).unwrap());
                }
                Ok((MsgType::Keepalive, _)) if !self.sent => {
                    self.sent = true;
                    for net in routes() {
                        let upd = UpdateMsg::announce(
                            vec![
                                PathAttr::Origin(Origin::Igp),
                                PathAttr::AsPath(AsPath::sequence(vec![65009])),
                                PathAttr::NextHop(9),
                            ],
                            vec![net],
                        );
                        ctx.send(link, &Message::Update(upd).encode(4).unwrap());
                    }
                }
                _ => {}
            }
        }
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

struct Placeholder;
impl netsim::Node for Placeholder {
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Run one DUT (fir or wren) behind `Origin3` with the period-2 fault
/// probe and full route sampling; return its trace dump.
fn run_dut(fir: bool) -> TraceDump {
    let mut sim = Sim::new(SimConfig::default());
    let origin =
        sim.add_node(Box::new(Origin3 { reader: xbgp_wire::MsgReader::new(), sent: false }));
    let dut = sim.add_node(Box::new(Placeholder));
    let link = sim.connect(origin, dut, MS);
    let trace = TraceConfig { sample_every: 1, ..TraceConfig::default() };
    if fir {
        let mut cfg = FirConfig::new(65001, 1).neighbor(link, 9, 65009).with_trace(trace);
        cfg.xbgp = Some(fault_inject::manifest(2));
        sim.replace_node(dut, Box::new(FirDaemon::new(cfg)));
    } else {
        let mut cfg = WrenConfig::new(65001, 1).neighbor(link, 9, 65009).with_trace(trace);
        cfg.xbgp = Some(fault_inject::manifest(2));
        sim.replace_node(dut, Box::new(WrenDaemon::new(cfg)));
    }
    sim.run_until(5 * SEC);
    if fir {
        let d: &mut FirDaemon = sim.node_mut(dut);
        d.take_trace().expect("tracing enabled")
    } else {
        let d: &mut WrenDaemon = sim.node_mut(dut);
        d.take_trace().expect("tracing enabled")
    }
}

#[test]
fn faulting_route_and_next_clean_route_do_not_share_a_trace_id() {
    for (fir, name) in [(true, "fir"), (false, "wren")] {
        let dump = run_dut(fir);
        let [r1, r2, r3] = routes();

        // One decode event per route, each under its own ingest scope.
        let scope_of = |net: Ipv4Prefix| -> u64 {
            let packed = pack_prefix(net.addr(), net.len());
            let decodes: Vec<u64> = dump
                .events
                .iter()
                .filter(|e| e.kind == TraceKind::Decode && e.a == packed)
                .map(|e| e.trace_id)
                .collect();
            assert_eq!(decodes.len(), 1, "{name}: exactly one decode of {net}");
            decodes[0]
        };
        let (t1, t2, t3) = (scope_of(r1), scope_of(r2), scope_of(r3));
        assert_ne!(t1, t2, "{name}: distinct ingest scopes");
        assert_ne!(t2, t3, "{name}: the clean route after a fault gets a fresh scope");

        // The period-2 probe faults on exactly the second route; the fault
        // and its rollback must be attributed to that route's scope, and
        // nothing recorded under the clean routes' scopes may be a fault.
        let faults: Vec<&xbgp_obs::trace::TraceEvent> =
            dump.events.iter().filter(|e| e.kind == TraceKind::Fault).collect();
        assert_eq!(faults.len(), 1, "{name}: exactly one fault");
        assert_eq!(faults[0].trace_id, t2, "{name}: fault attributed to the faulting route");
        for e in &dump.events {
            if e.trace_id == t3 {
                assert!(
                    !matches!(e.kind, TraceKind::Fault | TraceKind::TxnRollback),
                    "{name}: clean route's scope must not inherit fault events"
                );
            }
        }

        // The postmortem snapshot names the faulting route's scope too.
        assert_eq!(dump.postmortems.len(), 1, "{name}: one postmortem");
        assert_eq!(dump.postmortems[0].trace_id, t2, "{name}: postmortem scope");
    }
}
