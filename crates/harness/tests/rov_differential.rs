//! Differential test for §3.4 origin validation: the xBGP extension
//! (`rov_check`, hash-backed helper), FIR's native trie OV, and WREN's
//! native hash OV must produce identical RFC 6811 verdicts over randomized
//! ROA tables and announcements.

use rpki::{Roa, RoaHashTable, RoaTable, RoaTrie, RovState};
use xbgp_core::api::{PeerInfo, PeerType};
use xbgp_core::{HostApi, InsertionPoint, Vmm, VmmOutcome};
use xbgp_progs::origin_validation;
use xbgp_wire::{AsPath, Ipv4Prefix};

/// Deterministic splitmix64 — keeps the test reproducible without a
/// dependency on wall-clock seeding.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Minimal execution context backing the rov_check extension with a real
/// ROA table (the daemons' glue does the same through `check_origin`).
struct RovHost<'a> {
    prefix: Ipv4Prefix,
    as_path_raw: Vec<u8>,
    table: &'a dyn RoaTable,
}

impl HostApi for RovHost<'_> {
    fn peer_info(&self) -> PeerInfo {
        PeerInfo {
            router_id: 1,
            asn: 65009,
            peer_type: PeerType::Ebgp,
            local_router_id: 2,
            local_asn: 65000,
            flags: 0,
        }
    }

    fn prefix(&self) -> Option<Ipv4Prefix> {
        Some(self.prefix)
    }

    fn get_attr_into(&self, code: u8, out: &mut Vec<u8>) -> Option<u8> {
        (code == 2).then(|| {
            out.extend_from_slice(&self.as_path_raw);
            0x40
        })
    }

    fn check_origin(&self, prefix: Ipv4Prefix, origin_asn: u32) -> u64 {
        self.table.validate(prefix, origin_asn) as u8 as u64
    }
}

fn random_tables(rng: &mut Rng, roas: usize) -> (RoaTrie, RoaHashTable) {
    let mut trie = RoaTrie::new();
    let mut hash = RoaHashTable::new();
    for _ in 0..roas {
        // Cluster addresses so announcements actually hit covering ROAs.
        let addr = (rng.below(64) as u32) << 24 | (rng.below(256) as u32) << 16;
        let len = 8 + rng.below(17) as u8; // 8..=24
        let max_len = len + rng.below(u64::from(33 - len)) as u8;
        let asn = 1 + rng.below(8) as u32; // small pool → collisions
        let roa = Roa::new(Ipv4Prefix::new(addr, len), max_len, asn);
        trie.insert(roa);
        hash.insert(roa);
    }
    (trie, hash)
}

fn random_announcement(rng: &mut Rng) -> (Ipv4Prefix, u32) {
    let addr =
        (rng.below(64) as u32) << 24 | (rng.below(256) as u32) << 16 | (rng.below(4) as u32) << 8;
    let len = 8 + rng.below(25) as u8; // 8..=32
                                       // Origin pool overlaps the ROA ASN pool but also exceeds it, so both
                                       // Valid and Invalid verdicts occur. Origin 0 is excluded: rov_check
                                       // treats a voided origin as "nothing to validate" and counts nothing.
    let origin = 1 + rng.below(9) as u32;
    (Ipv4Prefix::new(addr, len), origin)
}

/// Run the rov_check extension once and return which verdict it counted,
/// by diffing the persistent (valid, invalid, not_found) counters.
fn extension_verdict(
    vmm: &mut Vmm,
    host: &mut RovHost<'_>,
    before: (u64, u64, u64),
) -> (RovState, (u64, u64, u64)) {
    let outcome = vmm.run(InsertionPoint::BgpInboundFilter, host);
    assert_eq!(outcome, VmmOutcome::Fallback, "rov_check never discards");
    let raw = vmm
        .shared_read(origin_validation::GROUP, origin_validation::COUNTERS_KEY)
        .expect("counters allocated after a counted run");
    let after = origin_validation::decode_counters(&raw);
    let verdict = match (after.0 - before.0, after.1 - before.1, after.2 - before.2) {
        (1, 0, 0) => RovState::Valid,
        (0, 1, 0) => RovState::Invalid,
        (0, 0, 1) => RovState::NotFound,
        delta => panic!("extension counted {delta:?} for one announcement"),
    };
    (verdict, after)
}

#[test]
fn extension_matches_both_native_implementations() {
    for seed in 0..4u64 {
        let mut rng = Rng(0xc0ff_ee00 + seed);
        let (trie, hash) = random_tables(&mut rng, 200);
        assert_eq!(trie.len(), hash.len());

        let mut vmm = Vmm::from_manifest(&origin_validation::manifest()).unwrap();
        let mut counters = (0, 0, 0);
        let mut seen = [0usize; 3];
        for _ in 0..500 {
            let (prefix, origin) = random_announcement(&mut rng);

            // The two native data structures must agree with each other...
            let native_fir = trie.validate(prefix, origin);
            let native_wren = hash.validate(prefix, origin);
            assert_eq!(native_fir, native_wren, "trie vs hash diverge on {prefix} origin {origin}");

            // ...and the extension (driven through the VMM + helper ABI,
            // hash table behind `rpki_check_origin`) must match them.
            let mut body = Vec::new();
            AsPath::sequence(vec![65001, origin]).encode_body(&mut body, 4);
            let mut host = RovHost { prefix, as_path_raw: body, table: &hash };
            let (ext, after) = extension_verdict(&mut vmm, &mut host, counters);
            counters = after;
            assert_eq!(
                ext, native_fir,
                "extension diverges from native OV on {prefix} origin {origin}"
            );
            seen[ext as usize] += 1;
        }
        // The random tables must actually exercise all three verdicts,
        // otherwise this differential test is vacuous.
        assert!(
            seen.iter().all(|&n| n > 0),
            "seed {seed} produced a degenerate verdict mix: {seen:?}"
        );
        assert_eq!(counters.0 + counters.1 + counters.2, 500);
    }
}

#[test]
fn extension_verdict_against_trie_backed_helper_too() {
    // Same differential, with FIR's trie behind the helper instead: the
    // extension's verdict must not depend on the host's OV backend.
    let mut rng = Rng(0xdead_beef);
    let (trie, hash) = random_tables(&mut rng, 100);
    let mut vmm = Vmm::from_manifest(&origin_validation::manifest()).unwrap();
    let mut counters = (0, 0, 0);
    for _ in 0..200 {
        let (prefix, origin) = random_announcement(&mut rng);
        let mut body = Vec::new();
        AsPath::sequence(vec![65001, origin]).encode_body(&mut body, 4);
        let mut host = RovHost { prefix, as_path_raw: body.clone(), table: &trie };
        let (ext, after) = extension_verdict(&mut vmm, &mut host, counters);
        counters = after;
        assert_eq!(ext, hash.validate(prefix, origin));
    }
}
